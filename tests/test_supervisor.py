"""Execution supervisor: deadlines, quotas, cancellation, batch jobs.

Adversarial guests — infinite loops, unbounded allocation, runaway
recursion — must terminate with the right typed guest fault under
every engine, whether the hot code is running in the interpreter or
on a compiled trace, and a VM reused across jobs must behave byte-
for-byte like a fresh one.
"""

import pytest

from repro.baselines.method_jit import MethodJITVM
from repro.errors import (
    GuestFault,
    QuotaExceeded,
    ScriptCancelled,
    ScriptTimeout,
)
from repro.exec import (
    Job,
    JobResult,
    JobUsage,
    ResourceLimits,
    Supervisor,
    backoff_slots,
    status_of_fault,
    string_cells,
)
from repro.hardening.chaos import observe
from repro.vm import BaselineVM, ThreadedVM, TracingVM, VMConfig

ENGINES = {
    "tracing": TracingVM,
    "baseline": BaselineVM,
    "threaded": ThreadedVM,
    "methodjit": MethodJITVM,
}

INFINITE_LOOP = "var i = 0; while (true) { i = i + 1; }"
UNBOUNDED_ARRAY = "var a = []; var i = 0; while (true) { a.push(i); i = i + 1; }"
UNBOUNDED_STRING = 'var s = "x"; while (true) { s = s + s; }'
DEEP_RECURSION = (
    "function down(n) { return down(n + 1); } down(0);"
)
PRINT_FLOOD = 'var i = 0; while (true) { print("spam"); i = i + 1; }'


class TestResourceLimits:
    def test_any(self):
        assert not ResourceLimits().any()
        assert ResourceLimits(deadline_cycles=5).any()
        assert ResourceLimits(stack_quota=5).any()

    def test_string_cells(self):
        assert string_cells(0) == 1
        assert string_cells(7) == 1
        assert string_cells(8) == 2
        assert string_cells(80) == 11


class TestScriptMeter:
    def test_no_meter_by_default(self):
        vm = TracingVM()
        assert vm.meter is None

    def test_unlimited_meter_never_breaches(self):
        vm = TracingVM()
        meter = vm.install_meter(ResourceLimits())
        result = vm.run("var s = 0; for (var i = 0; i < 200; i = i + 1) s = s + i; s;")
        assert result.payload == sum(range(200))
        assert meter.pending is None
        assert meter.cycles_used(vm) > 0

    def test_billing_baselines_are_per_job(self):
        vm = TracingVM()
        vm.run("var x = 1; for (var i = 0; i < 50; i = i + 1) x = x + i;")
        burned = vm.stats.ledger.total
        assert burned > 0
        meter = vm.install_meter(ResourceLimits(deadline_cycles=10**9))
        assert meter.cycles_used(vm) == 0  # prior jobs are not billed

    def test_detection_does_not_raise_only_flags(self):
        vm = TracingVM()
        meter = vm.install_meter(ResourceLimits(heap_quota=1))
        meter.note_cells(5, vm)  # over quota: records pending, no raise
        assert isinstance(meter.pending, QuotaExceeded)
        assert vm.preempt_flag
        with pytest.raises(QuotaExceeded):
            vm.service_preemption()


class TestAdversarialGuests:
    """The ISSUE's acceptance scenario, under all four engines."""

    @pytest.mark.parametrize("engine", sorted(ENGINES))
    def test_infinite_loop_times_out(self, engine):
        vm = ENGINES[engine]()
        vm.install_meter(ResourceLimits(deadline_cycles=200_000))
        with pytest.raises(ScriptTimeout):
            vm.run(INFINITE_LOOP)
        # Termination within one loop edge of the breach: the overshoot
        # is a single iteration's work, not a runaway.
        used = vm.meter.cycles_used(vm)
        assert 200_000 <= used < 210_000
        # Interpreter state torn down cleanly.
        frames = getattr(vm, "frames", None)
        if frames is None:
            frames = vm.interpreter.frames
        assert not frames

    def test_infinite_loop_times_out_on_trace(self):
        vm = TracingVM()
        vm.install_meter(ResourceLimits(deadline_cycles=300_000))
        with pytest.raises(ScriptTimeout):
            vm.run(INFINITE_LOOP)
        # The loop is hot and simple: the deadline must have hit while
        # native code was running, exiting through the PREEMPT guard.
        assert vm.stats.tracing.loop_iterations_native > 0
        assert vm.stats.tracing.script_deadlines == 1

    @pytest.mark.parametrize("engine", sorted(ENGINES))
    def test_unbounded_array_growth_hits_heap_quota(self, engine):
        vm = ENGINES[engine]()
        vm.install_meter(ResourceLimits(heap_quota=10_000))
        with pytest.raises(QuotaExceeded) as info:
            vm.run(UNBOUNDED_ARRAY)
        assert info.value.resource == "heap-cells"
        assert vm.meter.heap_cells > 10_000

    @pytest.mark.parametrize("engine", sorted(ENGINES))
    def test_unbounded_string_growth_hits_heap_quota(self, engine):
        vm = ENGINES[engine]()
        vm.install_meter(ResourceLimits(heap_quota=50_000))
        with pytest.raises(QuotaExceeded) as info:
            vm.run(UNBOUNDED_STRING)
        assert info.value.resource == "heap-cells"

    @pytest.mark.parametrize("engine", sorted(ENGINES))
    def test_deep_recursion_hits_stack_quota(self, engine):
        vm = ENGINES[engine]()
        vm.install_meter(ResourceLimits(stack_quota=100))
        with pytest.raises(QuotaExceeded) as info:
            vm.run(DEEP_RECURSION)
        assert info.value.resource == "stack-frames"
        assert vm.meter.max_stack == 101

    @pytest.mark.parametrize("engine", sorted(ENGINES))
    def test_deep_recursion_hits_deadline_without_stack_quota(self, engine):
        # Pure recursion never crosses a loop edge: the call-boundary
        # poll must deliver the deadline anyway.
        vm = ENGINES[engine]()
        vm.install_meter(ResourceLimits(deadline_cycles=150_000,
                                        stack_quota=500_000))
        with pytest.raises(ScriptTimeout):
            vm.run(DEEP_RECURSION)

    @pytest.mark.parametrize("engine", sorted(ENGINES))
    def test_print_flood_hits_output_quota(self, engine):
        vm = ENGINES[engine]()
        vm.install_meter(ResourceLimits(output_quota=1_000))
        with pytest.raises(QuotaExceeded) as info:
            vm.run(PRINT_FLOOD)
        assert info.value.resource == "output-bytes"
        # Output produced before the breach is preserved for the host.
        assert vm.output and vm.output[0] == "spam"

    def test_deterministic_cancellation_point(self):
        vm = TracingVM()
        vm.install_meter(ResourceLimits(cancel_at_cycles=100_000))
        with pytest.raises(ScriptCancelled):
            vm.run(INFINITE_LOOP)
        assert vm.stats.tracing.script_cancels == 1

    def test_host_cancellation_without_limits(self):
        vm = TracingVM()
        vm.install_meter(ResourceLimits())
        vm.cancel_script("tenant disabled")
        with pytest.raises(ScriptCancelled):
            vm.run(INFINITE_LOOP)

    def test_happy_path_unaffected_by_limits(self):
        source = "var s = 0; for (var i = 0; i < 500; i = i + 1) s = s + i; s;"
        plain = TracingVM()
        unlimited = plain.run(source)
        metered = TracingVM()
        metered.install_meter(ResourceLimits(deadline_cycles=10**9,
                                             heap_quota=10**9))
        limited = metered.run(source)
        assert observe(plain, unlimited) == observe(metered, limited)
        # Metering charges zero simulated cycles.
        assert plain.stats.ledger.total == metered.stats.ledger.total

    def test_breach_mid_recording_aborts_recorder_cleanly(self):
        # hotness_threshold=2: iteration 3 records.  A deadline placed
        # inside the recording window must tear the recorder down.
        vm = TracingVM()
        vm.run("var warm = 0; for (var i = 0; i < 1; i = i + 1) warm = 1;")
        base = vm.stats.ledger.total
        vm.reset_guest_state()
        vm.install_meter(ResourceLimits(deadline_cycles=2_000))
        with pytest.raises(ScriptTimeout):
            vm.run(INFINITE_LOOP)
        assert vm.recorder is None or vm.recorder.finished
        assert base <= vm.stats.ledger.total

    def test_guest_fault_passes_through_firewall_chaos(self):
        # An injected internal JIT fault is contained by the firewall;
        # the guest fault must still surface as the typed exception.
        from repro.hardening import FaultPlan

        config = VMConfig(
            fault_plan=FaultPlan.parse(["compile.assemble:1"]),
        )
        vm = TracingVM(config)
        vm.install_meter(ResourceLimits(deadline_cycles=250_000))
        with pytest.raises(ScriptTimeout):
            vm.run(INFINITE_LOOP)
        assert vm.firewall.failures >= 1  # the injected fault was contained


class TestVMReuse:
    """reset_guest_state: a reused VM must match a fresh one exactly."""

    PROGRAMS = [
        "var s = 0; for (var i = 0; i < 300; i = i + 1) s = s + i; print(s); s;",
        'var words = "a,b,c".split(","); print(words.length); words.length;',
        "function fib(n) { if (n < 2) return n; return fib(n-1) + fib(n-2); }"
        " fib(12);",
    ]

    @pytest.mark.parametrize("engine", sorted(ENGINES))
    def test_reused_vm_equals_fresh_vm(self, engine):
        reused = ENGINES[engine]()
        for source in self.PROGRAMS:
            fresh = ENGINES[engine]()
            fresh_obs = observe(fresh, fresh.run(source))
            reused.reset_guest_state()
            reused_obs = observe(reused, reused.run(source))
            assert reused_obs == fresh_obs

    def test_reuse_after_guest_fault(self):
        vm = TracingVM()
        vm.install_meter(ResourceLimits(deadline_cycles=100_000))
        with pytest.raises(ScriptTimeout):
            vm.run(INFINITE_LOOP)
        vm.reset_guest_state()
        source = "var s = 0; for (var i = 0; i < 100; i = i + 1) s = s + i; s;"
        fresh = TracingVM()
        assert observe(vm, vm.run(source)) == observe(fresh, fresh.run(source))

    def test_globals_do_not_leak_across_reset(self):
        from repro.errors import JSThrow

        vm = TracingVM()
        vm.run("var secret = 42;")
        assert vm.run("secret;").payload == 42
        vm.reset_guest_state()
        # The global is gone: reading it is now a ReferenceError.
        with pytest.raises(JSThrow, match="secret is not defined"):
            vm.run("secret;")


class TestSupervisor:
    def test_queue_runs_all_jobs(self):
        sup = Supervisor(limits=ResourceLimits(deadline_cycles=500_000))
        results = sup.run([
            Job("sum", "var s = 0; for (var i = 0; i < 50; i = i + 1) s = s + i; s;"),
            Job("loop", INFINITE_LOOP),
            Job("boom", 'throw "nope";'),
            Job("bad", "var ("),
        ])
        statuses = {r.job_id: r.status for r in results}
        assert statuses == {
            "sum": "ok",
            "loop": "timeout",
            "boom": "js-error",
            "bad": "compile-error",
        }
        assert results[0].result == "1225"
        assert results[1].fault is not None

    def test_jobs_are_isolated(self):
        sup = Supervisor()
        poison = Job("writer", 'var leak = "set by writer";', tenant="a")
        probe = Job("reader", "leak;", tenant="b")
        results = sup.run([poison, probe])
        # The writer's global did not survive into the reader's world.
        assert results[1].status == "js-error"
        assert "leak is not defined" in results[1].fault
        assert results[1].output == ()

    def test_output_is_per_job(self):
        sup = Supervisor()
        results = sup.run([
            Job("a", 'print("from a");'),
            Job("b", 'print("from b");'),
        ])
        assert results[0].output == ("from a",)
        assert results[1].output == ("from b",)

    def test_usage_is_per_job_billing(self):
        sup = Supervisor()
        heavy = "var a = []; for (var i = 0; i < 200; i = i + 1) a.push(i); a.length;"
        light = "1 + 1;"
        results = sup.run([Job("heavy", heavy), Job("light", light)])
        assert results[0].usage.heap_cells > 100
        assert results[1].usage.heap_cells == 0
        assert 0 < results[1].usage.cycles < results[0].usage.cycles

    def test_shared_trace_cache_across_jobs(self):
        # The same source re-submitted re-uses the compiled Code, so
        # the second job enters traces recorded during the first.
        sup = Supervisor()
        source = "var s = 0; for (var i = 0; i < 400; i = i + 1) s = s + i; s;"
        first, second = sup.run([Job("j1", source), Job("j2", source)])
        assert first.result == second.result == str(sum(range(400)))
        assert second.usage.cycles < first.usage.cycles  # warm cache pays off
        # Job 2 may still compile a hot side-exit branch, but not the
        # main tree again.
        assert second.usage.compile_cycles < first.usage.compile_cycles

    def test_per_job_limit_override(self):
        sup = Supervisor(limits=ResourceLimits(deadline_cycles=10**9))
        tight = ResourceLimits(deadline_cycles=100_000)
        results = sup.run([
            Job("tight", INFINITE_LOOP, limits=tight),
            Job("fine", "2 + 2;"),
        ])
        assert results[0].status == "timeout"
        assert results[1].status == "ok"

    def test_breach_detected_at_finish_still_counts(self):
        # The allocation breaches the quota but the program ends before
        # any safe point: the job is still marked as a quota kill.
        sup = Supervisor(limits=ResourceLimits(heap_quota=2))
        result = sup.run_source("var a = [1, 2, 3, 4, 5, 6, 7, 8];")
        assert result.status == "quota"
        assert result.result is None

    def test_retry_on_cache_pressure(self):
        # A tiny code-cache budget forces flushes; a breach that
        # coincides with them is retried with backoff and a
        # job-retried event.
        config = VMConfig(code_cache_budget=400, capture_events=True)
        sup = Supervisor(
            config=config,
            limits=ResourceLimits(deadline_cycles=150_000),
            max_retries=2,
        )
        nested = (
            "var total = 0;"
            "for (var i = 0; i < 200; i = i + 1) {"
            "  for (var j = 0; j < 40; j = j + 1) { total = total + j; }"
            "  var s = ''; for (var k = 0; k < 4; k = k + 1) { s = s + 'x'; }"
            "}"
            "total;"
        )
        results = sup.run([Job("pressured", nested)])
        result = results[0]
        if result.attempts > 1:
            from repro.core import events as eventkind

            retried = sup.vm.events.of_kind(eventkind.JOB_RETRIED)
            assert retried and retried[0].payload["job"] == "pressured"
            assert sup.vm.stats.tracing.jobs_retried == result.attempts - 1
        else:  # breach did not coincide with a flush on this run
            assert result.status in ("ok", "timeout")

    def test_retry_heuristic(self):
        sup = Supervisor(max_retries=1)

        def res(status, flushes):
            return JobResult(
                job_id="j", tenant="t", status=status, attempts=1,
                engine_mode="tracing", usage=JobUsage(),
                cache_flushes=flushes,
            )

        assert sup._should_retry(res("timeout", 1), attempt=1)
        assert sup._should_retry(res("quota", 2), attempt=1)
        assert not sup._should_retry(res("timeout", 0), attempt=1)  # guest's fault
        assert not sup._should_retry(res("ok", 3), attempt=1)
        assert not sup._should_retry(res("timeout", 1), attempt=2)  # retries spent

    def test_tenant_degrades_to_interpreter_after_compile_breaches(self):
        loopy = "var s = 0; for (var i = 0; i < 300; i = i + 1) s = s + i; s;"
        sup = Supervisor(
            limits=ResourceLimits(compile_quota=1),
            degrade_after=2,
            max_retries=0,
        )
        # Distinct sources so each job compiles (and breaches) afresh.
        results = sup.run([
            Job("a1", loopy, tenant="abuser"),
            Job("a2", loopy + " s;", tenant="abuser"),
            Job("a3", loopy + " s + 0;", tenant="abuser"),
        ])
        assert results[0].status == "quota"
        assert results[1].status == "quota"
        assert "abuser" in sup.degraded_tenants
        # Demoted to interpreter-only: no compiling, so the job succeeds.
        assert results[2].status == "ok"
        assert results[2].engine_mode == "interp-only"
        assert results[2].usage.compile_cycles == 0

    def test_degradation_is_per_tenant(self):
        loopy = "var s = 0; for (var i = 0; i < 300; i = i + 1) s = s + i; s;"
        sup = Supervisor(
            limits=ResourceLimits(compile_quota=1),
            degrade_after=1,
            max_retries=0,
        )
        sup.run([Job("bad", loopy, tenant="abuser")])
        assert "abuser" in sup.degraded_tenants
        good = sup.run([
            Job("good", loopy + " s;", tenant="citizen",
                limits=ResourceLimits())
        ])[0]
        assert good.engine_mode != "interp-only"
        assert good.status == "ok"

    @pytest.mark.parametrize("engine", sorted(ENGINES))
    def test_supervisor_runs_on_every_engine(self, engine):
        sup = Supervisor(
            engine=engine, limits=ResourceLimits(deadline_cycles=400_000)
        )
        ok = sup.run_source("var x = 6 * 7; x;")
        assert (ok.status, ok.result) == ("ok", "42")
        hung = sup.run_source(INFINITE_LOOP, job_id="hang")
        assert hung.status == "timeout"

    def test_events_fold_into_stats(self):
        sup = Supervisor(limits=ResourceLimits(deadline_cycles=100_000))
        sup.run_source(INFINITE_LOOP)
        tracing = sup.vm.stats.tracing
        assert tracing.script_deadlines == 1
        assert tracing.guest_faults == 1
        assert any(
            "guest faults" in line for line in sup.vm.stats.summary_lines()
        )


class TestFaultStatusMapping:
    """Every GuestFault subclass maps to its own distinct batch status."""

    def test_statuses_are_distinct(self):
        faults = [
            ScriptTimeout(10, 5),
            ScriptCancelled("host says no"),
            QuotaExceeded("heap-cells", 10, 5),
            GuestFault("some future fault kind"),
        ]
        statuses = [status_of_fault(fault) for fault in faults]
        assert statuses == ["timeout", "cancelled", "quota", "guest-fault"]
        assert len(set(statuses)) == len(statuses)

    def test_unknown_subclass_never_billed_as_quota(self):
        class FutureFault(GuestFault):
            kind = "future-fault"

        assert status_of_fault(FutureFault("boom")) == "guest-fault"


class TestRetryBackoff:
    """Seeded-jitter exponential backoff in queue slots (the
    positional-insert bug collapsed every deep backoff to the front)."""

    def test_slots_are_exponential_with_jitter(self):
        import random

        rng = random.Random(7)
        for attempt in range(1, 8):
            base = 1 << (attempt - 1)
            for _ in range(20):
                slots = backoff_slots(rng, attempt)
                assert base <= slots < 2 * base

    def test_deterministic_under_fixed_seed(self):
        sup_a = Supervisor(backoff_seed=42)
        sup_b = Supervisor(backoff_seed=42)
        seq_a = [sup_a.retry_backoff(attempt) for attempt in (1, 2, 3, 3, 2)]
        seq_b = [sup_b.retry_backoff(attempt) for attempt in (1, 2, 3, 3, 2)]
        assert seq_a == seq_b
        assert Supervisor(backoff_seed=43).retry_backoff(3) >= 4

    def test_retry_requeues_behind_other_jobs(self):
        # Force the first attempt of the first job to "fail retryably"
        # and assert it does not run again immediately: the backoff
        # places it behind at least one other queued job.
        sup = Supervisor(max_retries=1, backoff_seed=0)
        order = []
        real_attempt = sup._run_attempt

        def spy(job, attempt):
            order.append((job.job_id, attempt))
            result = real_attempt(job, attempt)
            if job.job_id == "flaky" and attempt == 1:
                result.status = "timeout"
                result.cache_flushes = 1  # retry heuristic's signal
            return result

        sup._run_attempt = spy
        jobs = [
            Job("flaky", "1 + 1;"),
            Job("steady-1", "2 + 2;"),
            Job("steady-2", "3 + 3;"),
        ]
        results = sup.run(jobs)
        retry_position = order.index(("flaky", 2))
        # Backoff for attempt 1 is exactly 1 slot: one other job runs
        # before the retry (never front-of-queue).
        assert order[0] == ("flaky", 1)
        assert retry_position == 2
        assert {r.job_id: r.status for r in results} == {
            "flaky": "ok", "steady-1": "ok", "steady-2": "ok",
        }

    def test_retry_exhaustion_reports_last_fault(self):
        # Two attempts, two different faults: the surfaced JobResult
        # must carry the *last* attempt's fault, not the first's.
        sup = Supervisor(max_retries=1)
        faults = {
            1: ("timeout", "script exceeded its deadline (first attempt)"),
            2: ("quota", "script exceeded its compile-cycles quota (second)"),
        }

        def fake_attempt(job, attempt):
            status, fault = faults[attempt]
            return JobResult(
                job_id=job.job_id, tenant=job.tenant, status=status,
                attempts=attempt, engine_mode="tracing", usage=JobUsage(),
                fault=fault, cache_flushes=1,
            )

        sup._run_attempt = fake_attempt
        result = sup.run([Job("doomed", "1;")])[0]
        assert result.attempts == 2
        assert result.status == "quota"
        assert result.fault == faults[2][1]


class TestTenantProbation:
    """Half-open circuit: degraded tenants earn the JIT back after K
    clean interpreter-only jobs, on probation."""

    LOOPY = "var s = 0; for (var i = 0; i < 300; i = i + 1) s = s + i; s;"

    def _degraded_supervisor(self, probation_after=2):
        sup = Supervisor(
            limits=ResourceLimits(compile_quota=1),
            degrade_after=1,
            max_retries=0,
            probation_after=probation_after,
            capture_events=True,
        )
        breach = sup.run([Job("b0", self.LOOPY, tenant="t")])[0]
        assert breach.status == "quota"
        assert "t" in sup.degraded_tenants
        return sup

    def _clean_job(self, sup, job_id):
        # Interpreter-only jobs never compile, so a lifted compile
        # quota is irrelevant; give each a fresh source to prove it.
        return sup.run([
            Job(job_id, f"{self.LOOPY} s + {job_id!r};", tenant="t")
        ])[0]

    def test_probation_after_clean_interp_jobs(self):
        from repro.core import events as eventkind

        sup = self._degraded_supervisor(probation_after=2)
        first = self._clean_job(sup, "c1")
        assert first.engine_mode == "interp-only"
        assert "t" in sup.degraded_tenants  # one clean job is not enough
        second = self._clean_job(sup, "c2")
        assert second.status == "ok"
        assert "t" not in sup.degraded_tenants
        assert "t" in sup.probation_tenants
        probations = sup.vm.events.of_kind(eventkind.TENANT_PROBATION)
        assert [e.payload["phase"] for e in probations] == ["enter"]

    def test_clean_jit_job_restores_tenant(self):
        from repro.core import events as eventkind

        sup = self._degraded_supervisor(probation_after=1)
        self._clean_job(sup, "c1")
        assert "t" in sup.probation_tenants
        # On probation the JIT is back; an untraced (cold) source with a
        # lifted quota completes clean and closes the window.
        ok = sup.run([
            Job("clean", "6 * 7;", tenant="t", limits=ResourceLimits())
        ])[0]
        assert ok.status == "ok"
        assert ok.engine_mode != "interp-only"
        assert "t" not in sup.probation_tenants
        assert "t" not in sup.degraded_tenants
        phases = [
            e.payload["phase"]
            for e in sup.vm.events.of_kind(eventkind.TENANT_PROBATION)
        ]
        assert phases == ["enter", "restored"]

    def test_breach_on_probation_redegrades_immediately(self):
        from repro.core import events as eventkind

        sup = self._degraded_supervisor(probation_after=1)
        self._clean_job(sup, "c1")
        assert "t" in sup.probation_tenants
        relapse = sup.run([Job("r0", self.LOOPY + " s;", tenant="t")])[0]
        assert relapse.status == "quota"
        assert "t" in sup.degraded_tenants
        assert "t" not in sup.probation_tenants
        phases = [
            e.payload["phase"]
            for e in sup.vm.events.of_kind(eventkind.TENANT_PROBATION)
        ]
        assert phases == ["enter", "redegraded"]

    def test_faulted_interp_job_resets_the_clean_counter(self):
        sup = self._degraded_supervisor(probation_after=2)
        self._clean_job(sup, "c1")
        bad = sup.run([
            Job("bad", INFINITE_LOOP, tenant="t",
                limits=ResourceLimits(deadline_cycles=50_000))
        ])[0]
        assert bad.status == "timeout"
        # The streak restarted: one more clean job must not be enough.
        self._clean_job(sup, "c2")
        assert "t" in sup.degraded_tenants
        self._clean_job(sup, "c3")
        assert "t" in sup.probation_tenants
