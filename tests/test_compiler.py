"""Unit tests for the bytecode compiler (loop structure is load-bearing
for the tracer, so it gets explicit coverage)."""

import pytest

from repro.bytecode import opcodes as op
from repro.bytecode.compiler import compile_program
from repro.bytecode.disasm import disassemble
from repro.errors import CompileError


def ops_of(code):
    return [insn[0] for insn in code.insns]


class TestLoopStructure:
    def test_loop_header_emitted(self):
        code = compile_program("for (var i = 0; i < 3; i++) ;")
        assert op.LOOPHEADER in ops_of(code)

    def test_loop_info_range_covers_backedge(self):
        code = compile_program("for (var i = 0; i < 3; i++) i;")
        loop = code.loops[0]
        assert code.insns[loop.header_pc][0] == op.LOOPHEADER
        backward_jumps = [
            pc
            for pc, (opcode, arg) in enumerate(code.insns)
            if opcode == op.JUMP and arg is not None and arg <= pc
        ]
        assert backward_jumps
        for pc in backward_jumps:
            assert loop.contains_pc(pc)
            assert code.insns[pc][1] == loop.header_pc

    def test_nested_loop_parenting(self):
        code = compile_program(
            "for (var i = 0; i < 2; i++) { for (var j = 0; j < 2; j++) ; }"
        )
        assert len(code.loops) == 2
        outer, inner = code.loops
        assert inner.parent == outer.loop_id
        assert inner.depth == outer.depth + 1
        assert outer.encloses(inner)
        assert not inner.encloses(outer)

    def test_while_and_do_while_have_headers(self):
        code = compile_program("var i = 0; while (i < 3) i++; do i--; while (i > 0);")
        assert len(code.loops) == 2

    def test_do_while_backedge_is_conditional(self):
        code = compile_program("var i = 0; do i++; while (i < 3);")
        loop = code.loops[0]
        conditional_back = [
            pc
            for pc, (opcode, arg) in enumerate(code.insns)
            if opcode == op.IFTRUE and arg == loop.header_pc
        ]
        assert conditional_back

    def test_innermost_loop_containing(self):
        code = compile_program(
            "for (var i = 0; i < 2; i++) { for (var j = 0; j < 2; j++) j; i; }"
        )
        outer, inner = code.loops
        mid_inner_pc = inner.header_pc + 1
        assert code.innermost_loop_containing(mid_inner_pc) is inner

    def test_blacklist_patches_header(self):
        code = compile_program("for (var i = 0; i < 2; i++) ;")
        header = code.loops[0].header_pc
        code.blacklist_header(header)
        assert code.insns[header][0] == op.NOP
        assert header in code.blacklisted_headers


class TestScoping:
    def test_toplevel_vars_are_globals(self):
        code = compile_program("var x = 1; x;")
        assert op.SETGLOBAL in ops_of(code)
        assert op.SETLOCAL not in ops_of(code)

    def test_function_vars_are_locals(self):
        code = compile_program("function f() { var x = 1; return x; }")
        fn_box = code.consts[0]
        fn_code = fn_box.payload.code
        assert op.SETLOCAL in ops_of(fn_code)
        assert "x" in fn_code.local_names

    def test_params_are_locals(self):
        code = compile_program("function f(a, b) { return a + b; }")
        fn_code = code.consts[0].payload.code
        assert fn_code.local_names[:2] == ["a", "b"]

    def test_undeclared_assignment_is_global(self):
        code = compile_program("function f() { g = 1; }")
        fn_code = code.consts[0].payload.code
        assert op.SETGLOBAL in ops_of(fn_code)

    def test_hoisting(self):
        code = compile_program("function f() { x = 1; var x; return x; }")
        fn_code = code.consts[0].payload.code
        assert op.SETGLOBAL not in ops_of(fn_code)


class TestBreakContinue:
    def test_break_outside_loop(self):
        with pytest.raises(CompileError):
            compile_program("break;")

    def test_continue_outside_loop(self):
        with pytest.raises(CompileError):
            compile_program("continue;")

    def test_return_at_toplevel(self):
        with pytest.raises(CompileError):
            compile_program("return 1;")


class TestConstPools:
    def test_consts_deduplicated(self):
        code = compile_program("var a = 3.5; var b = 3.5;")
        values = [box.payload for box in code.consts]
        assert values.count(3.5) == 1

    def test_zero_one_fast_opcodes(self):
        code = compile_program("var a = 0; var b = 1;")
        assert op.ZERO in ops_of(code)
        assert op.ONE in ops_of(code)

    def test_function_consts_never_deduplicated(self):
        code = compile_program(
            "var a = function () { return 1; }; var b = function () { return 1; };"
        )
        fns = [box for box in code.consts if getattr(box.payload, "is_callable", False)]
        assert len(fns) == 2


class TestDisassembler:
    def test_disassemble_mentions_names(self):
        code = compile_program("var total = 0; for (var i = 0; i < 3; i++) total += i;")
        text = disassemble(code)
        assert "LOOPHEADER" in text
        assert "'total'" in text
        assert "backward (loop edge)" in text
