"""Property-based differential testing: random JSLite loop programs must
behave identically on the interpreter and the tracing VM.

This is the reproduction's equivalent of the paper's JSFUNFUZZ usage
(Section 6.6): "we modified JSFUNFUZZ to generate loops, and also to
test more heavily certain constructs we suspected would reveal flaws" —
here the generator is biased toward type-unstable loops and heavily
branching code for exactly that reason.
"""

from hypothesis import given, settings, strategies as st

from tests.helpers import ALL_ENGINES

_VARS = ["a", "b", "c"]

_atoms = st.one_of(
    st.sampled_from(_VARS),
    st.sampled_from(["i", "1", "2", "3", "7", "0.5", "2.5", "100"]),
)

_binops = st.sampled_from(["+", "-", "*", "&", "|", "^", "<<", ">>", ">>>", "%"])
_relops = st.sampled_from(["<", "<=", ">", ">=", "==", "!=", "===", "!=="])


@st.composite
def expressions(draw, depth=2):
    if depth == 0 or draw(st.booleans()):
        return draw(_atoms)
    left = draw(expressions(depth=depth - 1))
    right = draw(expressions(depth=depth - 1))
    op = draw(_binops)
    return f"({left} {op} {right})"


@st.composite
def statements(draw, depth=1):
    kind = draw(
        st.sampled_from(["assign", "assign", "assign", "if", "compound"])
        if depth > 0
        else st.just("assign")
    )
    if kind == "assign":
        var = draw(st.sampled_from(_VARS))
        expr = draw(expressions())
        return f"{var} = {expr};"
    if kind == "if":
        cond_left = draw(_atoms)
        cond_right = draw(_atoms)
        relop = draw(_relops)
        then_stmt = draw(statements(depth=depth - 1))
        else_stmt = draw(statements(depth=depth - 1))
        return f"if ({cond_left} {relop} {cond_right}) {{ {then_stmt} }} else {{ {else_stmt} }}"
    body = " ".join(draw(st.lists(statements(depth=depth - 1), min_size=1, max_size=3)))
    return f"{{ {body} }}"


@st.composite
def loop_programs(draw):
    n_stmts = draw(st.integers(min_value=1, max_value=4))
    body = " ".join(draw(statements()) for _ in range(n_stmts))
    iterations = draw(st.integers(min_value=5, max_value=40))
    return (
        "var a = 0, b = 1, c = 2;"
        f"for (var i = 0; i < {iterations}; i++) {{ {body} }}"
        "'' + a + '|' + b + '|' + c;"
    )


@st.composite
def heap_loop_programs(draw):
    """Random loops over objects, arrays, and an inlinable function."""
    n_stmts = draw(st.integers(min_value=1, max_value=4))
    body = []
    for _ in range(n_stmts):
        kind = draw(
            st.sampled_from(
                ["prop_write", "prop_read", "elem_write", "elem_read", "call", "plain"]
            )
        )
        expr = draw(expressions())
        if kind == "prop_write":
            name = draw(st.sampled_from(["x", "y"]))
            body.append(f"o.{name} = {expr};")
        elif kind == "prop_read":
            name = draw(st.sampled_from(["x", "y"]))
            target = draw(st.sampled_from(_VARS))
            body.append(f"{target} = o.{name} + {draw(_atoms)};")
        elif kind == "elem_write":
            body.append(f"arr[i % 4] = {expr};")
        elif kind == "elem_read":
            target = draw(st.sampled_from(_VARS))
            body.append(f"{target} = arr[i % 4];")
        elif kind == "call":
            target = draw(st.sampled_from(_VARS))
            body.append(f"{target} = twist({expr});")
        else:
            target = draw(st.sampled_from(_VARS))
            body.append(f"{target} = {expr};")
    iterations = draw(st.integers(min_value=5, max_value=40))
    return (
        "function twist(n) { if (n % 2) return n * 3; return n - 1; }"
        "var o = {x: 1, y: 2};"
        "var arr = [1, 2, 3, 4];"
        "var a = 0, b = 1, c = 2;"
        f"for (var i = 0; i < {iterations}; i++) {{ {' '.join(body)} }}"
        "'' + a + '|' + b + '|' + c + '|' + o.x + '|' + o.y + '|' + arr.join(',');"
    )


@given(heap_loop_programs())
@settings(max_examples=100, deadline=None)
def test_random_heap_loops_agree(source):
    results = {}
    for name in ("baseline", "tracing"):
        vm = ALL_ENGINES[name]()
        results[name] = repr(vm.run(source))
    assert results["baseline"] == results["tracing"], source


@given(heap_loop_programs())
@settings(max_examples=30, deadline=None)
def test_random_heap_loops_agree_methodjit(source):
    results = {}
    for name in ("baseline", "methodjit"):
        vm = ALL_ENGINES[name]()
        results[name] = repr(vm.run(source))
    assert results["baseline"] == results["methodjit"], source


@given(loop_programs())
@settings(max_examples=150, deadline=None)
def test_random_loops_agree(source):
    results = {}
    for name in ("baseline", "tracing"):
        vm = ALL_ENGINES[name]()
        results[name] = repr(vm.run(source))
    assert results["baseline"] == results["tracing"], source


@given(loop_programs())
@settings(max_examples=40, deadline=None)
def test_random_loops_agree_methodjit(source):
    results = {}
    for name in ("baseline", "methodjit"):
        vm = ALL_ENGINES[name]()
        results[name] = repr(vm.run(source))
    assert results["baseline"] == results["methodjit"], source


@given(loop_programs())
@settings(max_examples=25, deadline=None)
def test_random_loops_agree_with_ablations(source):
    """Every optimization disabled must not change semantics."""
    from repro import TracingVM, VMConfig

    baseline = ALL_ENGINES["baseline"]()
    expected = repr(baseline.run(source))
    config = VMConfig(
        enable_cse=False,
        enable_exprsimp=False,
        enable_dse=False,
        enable_dce=False,
        enable_nesting=False,
        enable_oracle=False,
        enable_stitching=False,
    )
    assert repr(TracingVM(config).run(source)) == expected, source


@given(loop_programs())
@settings(max_examples=15, deadline=None)
def test_random_loops_agree_with_softfloat(source):
    from repro import TracingVM, VMConfig

    baseline = ALL_ENGINES["baseline"]()
    expected = repr(baseline.run(source))
    assert repr(TracingVM(VMConfig(enable_softfloat=True)).run(source)) == expected, source


@given(heap_loop_programs(), st.integers(min_value=0, max_value=2**16))
@settings(max_examples=60, deadline=None)
def test_random_loops_survive_random_faults(source, seed):
    """Chaos mode: a random program under a seeded random fault plan
    must still match the interpreter, and any fault that fires must be
    contained by the firewall (never escape as a Python exception)."""
    from repro import TracingVM, VMConfig

    baseline = ALL_ENGINES["baseline"]()
    expected = repr(baseline.run(source))
    vm = TracingVM(VMConfig(chaos_seed=seed))
    assert repr(vm.run(source)) == expected, (source, seed)
    tracing = vm.stats.tracing
    if tracing.faults_injected:
        assert tracing.internal_failures >= 1, (source, seed)
