"""Differential tests: the generated-Python backend vs the step interpreter.

The ``py`` backend compiles each fragment's ``NativeInsn`` sequence to a
real Python function; the ``step`` backend walks the same instructions
one at a time.  The contract is that they are observationally identical
in the simulated world: same results, same cycle ledgers, same stats
summaries, and the same trace-lifecycle event stream.

The one permitted difference is the global side-exit id counter
(``repro.core.exits._exit_ids``), which is shared across VM instances
within a process — two *same-backend* runs also disagree on raw exit
ids.  Events are therefore compared after renumbering exit ids in
first-seen order.
"""

from __future__ import annotations

import json
import pathlib

import pytest

from repro.core import events as eventkind
from repro.suite.programs import PROGRAMS
from repro.vm import TracingVM, VMConfig

SIEVE_PATH = pathlib.Path(__file__).parent.parent / "examples" / "sieve.js"


def _run(source: str, backend: str, **overrides):
    config = VMConfig()
    config.native_backend = backend
    for name, value in overrides.items():
        setattr(config, name, value)
    vm = TracingVM(config)
    vm.events.capture = True
    result = vm.run(source)
    return result, vm


def _normalized_events(vm):
    """(kind, payload-json) pairs with exit ids renumbered first-seen."""
    renumber = {}
    normalized = []
    for event in vm.events.events:
        payload = dict(event.payload)
        for key, value in payload.items():
            if key.endswith("exit_id") and isinstance(value, int):
                payload[key] = renumber.setdefault(value, len(renumber) + 1)
        normalized.append(
            (event.kind, json.dumps(payload, sort_keys=True, default=repr))
        )
    return normalized


def _side_exit_sequence(events):
    return [pair for pair in events if "exit" in pair[0]]


def _assert_runs_identical(source: str, name: str):
    result_py, vm_py = _run(source, "py")
    result_step, vm_step = _run(source, "step")

    assert repr(result_py) == repr(result_step), name
    assert vm_py.stats.total_cycles == vm_step.stats.total_cycles, name
    assert vm_py.stats.summary_lines() == vm_step.stats.summary_lines(), name
    assert vm_py.output == vm_step.output, name

    events_py = _normalized_events(vm_py)
    events_step = _normalized_events(vm_step)
    assert events_py == events_step, name
    assert _side_exit_sequence(events_py) == _side_exit_sequence(events_step)

    # The py backend must actually have compiled something on traceable
    # programs: a silent fallback to step would make this test vacuous.
    failures = vm_py.events.counts.get(eventkind.JIT_INTERNAL_FAILURE, 0)
    assert failures == 0, f"{name}: py backend fell back ({failures} failures)"
    return vm_py, vm_step


@pytest.mark.parametrize("program", PROGRAMS, ids=lambda p: p.name)
def test_suite_program_identical_across_backends(program):
    _assert_runs_identical(program.source, program.name)


def test_sieve_identical_across_backends():
    _assert_runs_identical(SIEVE_PATH.read_text(), "sieve.js")


#: The execution-strategy knob matrix: direct fragment linking (py
#: backend megafunctions) x table-threaded interpreter dispatch.  The
#: default/default combination is covered by the tests above.
_KNOB_MATRIX = [
    {"enable_direct_link": False},
    {"enable_threaded_dispatch": False},
    {"enable_direct_link": False, "enable_threaded_dispatch": False},
]


def _observables(result, vm):
    return (
        repr(result),
        vm.stats.total_cycles,
        tuple(vm.stats.summary_lines()),
        tuple(vm.output),
        _normalized_events(vm),
    )


@pytest.mark.parametrize("program", PROGRAMS, ids=lambda p: p.name)
def test_suite_program_identical_across_knob_matrix(program):
    """Every knob combination, on both backends, is observationally
    identical to the default py-backend run: same result, cycles,
    summaries, output, and (renumbered) event stream."""
    baseline = _observables(*_run(program.source, "py"))
    for overrides in _KNOB_MATRIX:
        for backend in ("py", "step"):
            got = _observables(*_run(program.source, backend, **overrides))
            assert got == baseline, f"{program.name}: {backend} {overrides}"


def test_sieve_identical_across_knob_matrix():
    source = SIEVE_PATH.read_text()
    baseline = _observables(*_run(source, "py"))
    for overrides in _KNOB_MATRIX:
        for backend in ("py", "step"):
            got = _observables(*_run(source, backend, **overrides))
            assert got == baseline, f"sieve.js: {backend} {overrides}"


def _profiled_run(source: str, backend: str, **overrides):
    config = VMConfig()
    config.native_backend = backend
    for name, value in overrides.items():
        setattr(config, name, value)
    vm = TracingVM(config)
    vm.events.capture = True
    vm.enable_profiling()
    result = vm.run(source)
    return result, vm


def test_backend_used_reflects_config():
    source = "var s = 0; for (var i = 0; i < 500; i++) s += i; s;"
    _result, vm_py = _profiled_run(source, "py")
    _result, vm_step = _profiled_run(source, "step")
    assert vm_py.profiler.loops, "expected a compiled loop"
    assert all(loop.backend == "py" for loop in vm_py.profiler.loops)
    assert all(loop.backend == "step" for loop in vm_step.profiler.loops)
    # Compile wall time is only spent by the py backend.
    assert vm_py.profiler.pycompile_count > 0
    assert vm_step.profiler.pycompile_count == 0


def test_chaos_pycompile_fault_falls_back_to_step():
    """With the firewall up, an injected emission fault must be contained:
    the run completes on the step backend with an unchanged result."""
    from repro.hardening import FaultPlan

    source = SIEVE_PATH.read_text()
    clean_result, clean_vm = _run(source, "py")

    config = VMConfig()
    config.native_backend = "py"
    config.fault_plan = FaultPlan.parse(["pycompile.emit:*"])
    vm = TracingVM(config)
    vm.events.capture = True
    vm.enable_profiling()
    result = vm.run(source)

    assert repr(result) == repr(clean_result)
    assert vm.output == clean_vm.output
    # Every fragment emission failed, so execution fell back to step.
    assert vm.profiler.loops
    assert all(loop.backend == "step" for loop in vm.profiler.loops)
    failures = vm.events.of_kind(eventkind.JIT_INTERNAL_FAILURE)
    assert failures, "injected pycompile faults must be reported"
    assert all(e.payload["boundary"] == "pycompile" for e in failures)
    assert all(e.payload["injected"] for e in failures)
    # The fallback is a recovery, not a breaker strike: the firewall logs
    # the trip but does not advance toward safe mode.
    firewall = vm.firewall
    assert firewall is not None
    assert any(trip[0] == "pycompile" for trip in firewall.trips)
    assert firewall.failures == 0
    assert not vm.in_safe_mode


def test_chaos_pycompile_link_fault_falls_back_to_stitching():
    """An injected megafunction-emission fault (``pycompile.link``) must
    be contained: trees keep running on per-fragment py dispatch with
    monitor-mediated stitching, and the result is unchanged."""
    from repro.hardening import FaultPlan

    source = SIEVE_PATH.read_text()
    clean_result, clean_vm = _profiled_run(source, "py")
    assert clean_vm.profiler.transfers_direct > 0, "expected direct transfers"

    config = VMConfig()
    config.native_backend = "py"
    config.fault_plan = FaultPlan.parse(["pycompile.link:*"])
    vm = TracingVM(config)
    vm.events.capture = True
    vm.enable_profiling()
    result = vm.run(source)

    assert repr(result) == repr(clean_result)
    assert vm.output == clean_vm.output
    assert vm.stats.total_cycles == clean_vm.stats.total_cycles
    # Fragments still compile; only the direct-link megafunction failed,
    # so the loops stay on the py backend with monitor stitching.
    assert vm.profiler.loops
    assert all(loop.backend == "py" for loop in vm.profiler.loops)
    assert vm.profiler.transfers_direct == 0
    assert vm.profiler.transfers_stitched > 0
    failures = vm.events.of_kind(eventkind.JIT_INTERNAL_FAILURE)
    assert failures, "injected pycompile.link faults must be reported"
    assert all(e.payload["boundary"] == "pycompile" for e in failures)
    assert all(e.payload["injected"] for e in failures)
    firewall = vm.firewall
    assert firewall is not None
    assert any(trip[0] == "pycompile" for trip in firewall.trips)
    assert firewall.failures == 0
    assert not vm.in_safe_mode
