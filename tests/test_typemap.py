"""Unit tests for trace types, locations, and type maps."""

import pytest

from repro import BaselineVM
from repro.core.typemap import (
    TraceType,
    box_for_type,
    describe_typemap,
    entry_matches,
    read_location,
    type_of_box,
    typemap_of_frame,
    unbox_for_type,
    write_location,
)
from repro.errors import VMInternalError
from repro.interp.frames import Frame
from repro.runtime.values import (
    NULL,
    TRUE,
    UNDEFINED,
    make_double,
    make_number,
    make_object,
    make_string,
)
from repro.runtime.objects import JSObject


def make_frame(n_locals=2):
    vm = BaselineVM()
    code = vm.compile("function f(a, b) { return a; }").consts[0].payload.code
    return vm, Frame(code, UNDEFINED, [make_number(1), make_double(2.5)])


class TestTypeOfBox:
    def test_all_types(self):
        assert type_of_box(make_number(1)) is TraceType.INT
        assert type_of_box(make_double(1.5)) is TraceType.DOUBLE
        assert type_of_box(make_string("x")) is TraceType.STRING
        assert type_of_box(TRUE) is TraceType.BOOLEAN
        assert type_of_box(NULL) is TraceType.NULL
        assert type_of_box(UNDEFINED) is TraceType.UNDEFINED
        assert type_of_box(make_object(JSObject())) is TraceType.OBJECT


class TestUnboxBox:
    def test_roundtrip_all_types(self):
        obj = JSObject()
        cases = [
            (make_number(7), TraceType.INT),
            (make_double(2.5), TraceType.DOUBLE),
            (make_string("hi"), TraceType.STRING),
            (TRUE, TraceType.BOOLEAN),
            (NULL, TraceType.NULL),
            (UNDEFINED, TraceType.UNDEFINED),
            (make_object(obj), TraceType.OBJECT),
        ]
        for box, trace_type in cases:
            raw = unbox_for_type(box, trace_type)
            rebox = box_for_type(raw, trace_type)
            assert repr(rebox) == repr(box)

    def test_int_promotes_into_double_slot(self):
        raw = unbox_for_type(make_number(3), TraceType.DOUBLE)
        assert raw == 3.0
        assert isinstance(raw, float)

    def test_double_does_not_fit_int_slot(self):
        with pytest.raises(VMInternalError):
            unbox_for_type(make_double(1.5), TraceType.INT)

    def test_exit_boxing_narrows_integral_doubles(self):
        # On-trace double 4.0 comes back as the interpreter's int 4.
        box = box_for_type(4.0, TraceType.DOUBLE)
        assert type_of_box(box) is TraceType.INT


class TestLocations:
    def test_read_write_local(self):
        vm, frame = make_frame()
        frames = [frame]
        write_location(vm, frames, 0, ("local", 0, 0), make_number(9))
        assert read_location(vm, frames, 0, ("local", 0, 0)).payload == 9

    def test_read_write_stack_extends(self):
        vm, frame = make_frame()
        frames = [frame]
        write_location(vm, frames, 0, ("stack", 0, 2), make_number(5))
        assert len(frame.stack) == 3
        assert read_location(vm, frames, 0, ("stack", 0, 2)).payload == 5

    def test_read_write_global(self):
        vm, frame = make_frame()
        write_location(vm, [frame], 0, ("global", "gee"), make_number(1))
        assert vm.globals["gee"].payload == 1
        assert read_location(vm, [frame], 0, ("global", "gee")).payload == 1

    def test_missing_global_reads_undefined(self):
        vm, frame = make_frame()
        assert read_location(vm, [frame], 0, ("global", "nope")) is UNDEFINED

    def test_this_location(self):
        vm, frame = make_frame()
        write_location(vm, [frame], 0, ("this", 0), make_string("self"))
        assert read_location(vm, [frame], 0, ("this", 0)).payload == "self"


class TestEntryMatching:
    def test_exact_match(self):
        vm, frame = make_frame()
        entries = typemap_of_frame(frame)
        assert entry_matches(vm, [frame], 0, entries)

    def test_promotion_allowed(self):
        vm, frame = make_frame()
        entries = [(("local", 0, 0), TraceType.DOUBLE)]
        assert entry_matches(vm, [frame], 0, entries)  # int enters double

    def test_demotion_refused(self):
        vm, frame = make_frame()
        entries = [(("local", 0, 1), TraceType.INT)]  # local 1 is double
        assert not entry_matches(vm, [frame], 0, entries)

    def test_mismatched_kind_refused(self):
        vm, frame = make_frame()
        entries = [(("local", 0, 0), TraceType.STRING)]
        assert not entry_matches(vm, [frame], 0, entries)

    def test_typemap_of_frame_includes_this_for_functions(self):
        _vm, frame = make_frame()
        entries = typemap_of_frame(frame)
        assert (("this", 0), TraceType.UNDEFINED) in entries


class TestDescribe:
    def test_readable(self):
        text = describe_typemap(
            [
                (("local", 0, 0), TraceType.INT),
                (("global", "x"), TraceType.DOUBLE),
                (("this", 0), TraceType.OBJECT),
                (("stack", 1, 2), TraceType.STRING),
            ]
        )
        assert "l0:int" in text
        assert "g:x:double" in text
        assert "this:object" in text
        assert "f1.s2:string" in text
