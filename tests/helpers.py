"""Shared helper utilities for the test suite."""

from __future__ import annotations

import pytest

from repro import BaselineVM, ThreadedVM, TracingVM, VMConfig
from repro.baselines.method_jit import MethodJITVM

ALL_ENGINES = {
    "baseline": BaselineVM,
    "threaded": ThreadedVM,
    "methodjit": MethodJITVM,
    "tracing": TracingVM,
}


def run_baseline(source: str):
    vm = BaselineVM()
    return vm.run(source), vm


def run_tracing(source: str, config: VMConfig = None):
    vm = TracingVM(config)
    return vm.run(source), vm


def assert_engines_agree(source: str, engines=("baseline", "tracing")):
    """Run ``source`` on several engines and assert identical results.

    Returns ``{engine: vm}`` for further stats assertions.
    """
    vms = {}
    results = {}
    for name in engines:
        vm = ALL_ENGINES[name]()
        results[name] = repr(vm.run(source))
        vms[name] = vm
    reference = results[engines[0]]
    for name, result in results.items():
        assert result == reference, (
            f"{name} disagrees: {result} != {reference} for program:\n{source}"
        )
    return vms


@pytest.fixture
def tracing_vm():
    return TracingVM()


@pytest.fixture
def baseline_vm():
    return BaselineVM()
