"""Tests for ``for..in`` (parser, semantics, all engines)."""

import pytest

from repro import BaselineVM
from repro.frontend import ast_nodes as ast
from repro.frontend.parser import parse
from tests.helpers import assert_engines_agree


def value(source):
    return BaselineVM().run(source).payload


class TestParsing:
    def test_var_form(self):
        stmt = parse("for (var k in o) ;").body[0]
        assert isinstance(stmt, ast.ForInStmt)
        assert stmt.var_name == "k"
        assert stmt.is_declaration

    def test_bare_form(self):
        stmt = parse("for (k in o) ;").body[0]
        assert isinstance(stmt, ast.ForInStmt)
        assert not stmt.is_declaration

    def test_ordinary_for_still_parses(self):
        stmt = parse("for (var i = 0; i < 2; i++) ;").body[0]
        assert isinstance(stmt, ast.ForStmt)


class TestSemantics:
    def test_object_keys_in_insertion_order(self):
        assert value(
            "var o = {b: 1, a: 2, c: 3}; var s = ''; for (var k in o) s += k; s;"
        ) == "bac"

    def test_values_via_computed_access(self):
        assert value(
            "var o = {x: 10, y: 20}; var t = 0; for (var k in o) t += o[k]; t;"
        ) == 30

    def test_array_indices_are_strings(self):
        assert value(
            "var a = [7, 8, 9]; var s = ''; for (var i in a) s += i; s;"
        ) == "012"

    def test_array_holes_skipped(self):
        assert value(
            "var a = []; a[0] = 1; a[3] = 2; var s = ''; for (var i in a) s += i; s;"
        ) == "03"

    def test_string_indices(self):
        assert value("var s = ''; for (var i in 'abc') s += i; s;") == "012"

    def test_null_and_undefined_iterate_zero_times(self):
        assert value("var n = 0; for (var k in null) n++; n;") == 0
        assert value("var n = 0; for (var k in undefined) n++; n;") == 0

    def test_break_and_continue(self):
        assert value(
            "var o = {a: 1, b: 2, c: 3, d: 4};"
            "var s = '';"
            "for (var k in o) { if (k == 'b') continue; if (k == 'd') break; s += k; }"
            "s;"
        ) == "ac"

    def test_snapshot_semantics(self):
        # Keys added during iteration are not visited (we snapshot).
        assert value(
            "var o = {a: 1}; var n = 0;"
            "for (var k in o) { o.added = 2; n++; }"
            "n;"
        ) == 1

    def test_bare_form_assigns_global(self):
        assert value("var o = {only: 1}; for (k in o) ; k;") == "only"

    def test_nested_for_in(self):
        assert value(
            "var outer = {a: 1, b: 2}; var inner = {x: 1, y: 2};"
            "var s = '';"
            "for (var p in outer) for (var q in inner) s += p + q;"
            "s;"
        ) == "axaybxby"


ENGINE_PROGRAMS = [
    "var o = {a: 1, b: 2, c: 3}; var t = 0; for (var k in o) t += o[k]; t;",
    "var a = [5, 6, 7, 8]; var s = ''; for (var i in a) s += a[i]; s;",
    "var words = {alpha: 3, beta: 5}; var total = 0;"
    "for (var r = 0; r < 30; r++) { for (var w in words) total += words[w]; }"
    "total;",
]


@pytest.mark.parametrize("source", ENGINE_PROGRAMS)
def test_forin_all_engines(source):
    assert_engines_agree(source, ("baseline", "threaded", "methodjit", "tracing"))


def test_forin_loop_is_untraceable_but_correct():
    from tests.helpers import run_tracing

    _r, vm = run_tracing(
        "var o = {a: 1, b: 2}; var t = 0;"
        "for (var r = 0; r < 40; r++) { for (var k in o) t += o[k]; }"
        "t;"
    )
    reasons = vm.stats.tracing.abort_reasons
    assert "iterkeys-on-trace" in reasons or "generic-getelem" in reasons
