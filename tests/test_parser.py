"""Unit tests for the JSLite parser."""

import pytest

from repro.errors import JSLiteSyntaxError
from repro.frontend import ast_nodes as ast
from repro.frontend.parser import parse


def first_stmt(source):
    return parse(source).body[0]


def expr_of(source):
    stmt = first_stmt(source)
    assert isinstance(stmt, ast.ExpressionStmt)
    return stmt.expression


class TestPrecedence:
    def test_mul_binds_tighter_than_add(self):
        node = expr_of("1 + 2 * 3;")
        assert node.op == "+"
        assert node.right.op == "*"

    def test_parentheses(self):
        node = expr_of("(1 + 2) * 3;")
        assert node.op == "*"
        assert node.left.op == "+"

    def test_shift_vs_relational(self):
        node = expr_of("a << 2 < b;")
        assert node.op == "<"
        assert node.left.op == "<<"

    def test_bitand_vs_equality(self):
        # JS quirk: == binds tighter than &.
        node = expr_of("a & b == c;")
        assert node.op == "&"
        assert node.right.op == "=="

    def test_logical_or_lowest(self):
        node = expr_of("a && b || c && d;")
        assert isinstance(node, ast.LogicalExpr)
        assert node.op == "||"
        assert node.left.op == "&&"

    def test_unary_binds_tightest(self):
        node = expr_of("-a * b;")
        assert node.op == "*"
        assert isinstance(node.left, ast.UnaryExpr)

    def test_right_associative_assignment(self):
        node = expr_of("a = b = 1;")
        assert isinstance(node, ast.AssignExpr)
        assert isinstance(node.value, ast.AssignExpr)

    def test_ternary(self):
        node = expr_of("a ? b : c ? d : e;")
        assert isinstance(node, ast.ConditionalExpr)
        assert isinstance(node.alternate, ast.ConditionalExpr)


class TestStatements:
    def test_var_multiple_declarations(self):
        stmt = first_stmt("var a = 1, b, c = 3;")
        assert isinstance(stmt, ast.VarDecl)
        assert len(stmt.declarations) == 3
        assert stmt.declarations[1] == ("b", None)

    def test_function_declaration(self):
        stmt = first_stmt("function f(a, b) { return a + b; }")
        assert isinstance(stmt, ast.FunctionDecl)
        assert stmt.params == ["a", "b"]
        assert isinstance(stmt.body[0], ast.ReturnStmt)

    def test_if_else_chain(self):
        stmt = first_stmt("if (a) x; else if (b) y; else z;")
        assert isinstance(stmt, ast.IfStmt)
        assert isinstance(stmt.alternate, ast.IfStmt)

    def test_for_all_parts(self):
        stmt = first_stmt("for (var i = 0; i < 10; i++) ;")
        assert isinstance(stmt, ast.ForStmt)
        assert isinstance(stmt.init, ast.VarDecl)
        assert stmt.test is not None
        assert isinstance(stmt.update, ast.UpdateExpr)

    def test_for_empty_parts(self):
        stmt = first_stmt("for (;;) break;")
        assert stmt.init is None
        assert stmt.test is None
        assert stmt.update is None

    def test_while_and_do_while(self):
        assert isinstance(first_stmt("while (x) ;"), ast.WhileStmt)
        assert isinstance(first_stmt("do ; while (x);"), ast.DoWhileStmt)

    def test_try_catch_finally(self):
        stmt = first_stmt("try { a; } catch (e) { b; } finally { c; }")
        assert isinstance(stmt, ast.TryStmt)
        assert stmt.catch_name == "e"
        assert stmt.finally_block is not None

    def test_try_requires_catch_or_finally(self):
        with pytest.raises(JSLiteSyntaxError):
            parse("try { a; }")

    def test_throw(self):
        stmt = first_stmt("throw x;")
        assert isinstance(stmt, ast.ThrowStmt)

    def test_block(self):
        stmt = first_stmt("{ a; b; }")
        assert isinstance(stmt, ast.BlockStmt)
        assert len(stmt.body) == 2


class TestExpressions:
    def test_member_chain(self):
        node = expr_of("a.b.c;")
        assert isinstance(node, ast.MemberExpr)
        assert node.name == "c"
        assert node.obj.name == "b"

    def test_computed_member(self):
        node = expr_of("a[b + 1];")
        assert node.computed
        assert isinstance(node.index, ast.BinaryExpr)

    def test_call_with_args(self):
        node = expr_of("f(1, x, 'y');")
        assert isinstance(node, ast.CallExpr)
        assert len(node.args) == 3

    def test_method_call(self):
        node = expr_of("o.m(1);")
        assert isinstance(node, ast.CallExpr)
        assert isinstance(node.callee, ast.MemberExpr)

    def test_new_with_args(self):
        node = expr_of("new Point(1, 2);")
        assert isinstance(node, ast.NewExpr)
        assert len(node.args) == 2

    def test_new_then_member(self):
        node = expr_of("new Foo().bar;")
        assert isinstance(node, ast.MemberExpr)
        assert isinstance(node.obj, ast.NewExpr)

    def test_array_literal(self):
        node = expr_of("[1, 2, 3];")
        assert isinstance(node, ast.ArrayLiteral)
        assert len(node.elements) == 3

    def test_object_literal(self):
        node = expr_of("({a: 1, 'b': 2, 3: x});")
        assert isinstance(node, ast.ObjectLiteral)
        assert [name for name, _v in node.properties] == ["a", "b", "3"]

    def test_function_expression(self):
        node = expr_of("(function add(a, b) { return a + b; });")
        assert isinstance(node, ast.FunctionExpr)
        assert node.name == "add"

    def test_compound_assignment(self):
        node = expr_of("x += 2;")
        assert isinstance(node, ast.AssignExpr)
        assert node.op == "+"

    def test_all_compound_operators(self):
        for text, op in [("-=", "-"), ("*=", "*"), ("/=", "/"), ("%=", "%"),
                         ("&=", "&"), ("|=", "|"), ("^=", "^"),
                         ("<<=", "<<"), (">>=", ">>"), (">>>=", ">>>")]:
            node = expr_of(f"x {text} 2;")
            assert node.op == op

    def test_prefix_postfix(self):
        pre = expr_of("++x;")
        post = expr_of("x++;")
        assert pre.prefix and not post.prefix

    def test_typeof_delete(self):
        assert expr_of("typeof x;").op == "typeof"
        assert isinstance(expr_of("delete o.x;"), ast.DeleteExpr)

    def test_comma_operator(self):
        node = expr_of("(a, b);")
        assert node.op == ","


class TestErrors:
    def test_invalid_assignment_target(self):
        with pytest.raises(JSLiteSyntaxError):
            parse("1 = 2;")

    def test_unterminated_block(self):
        with pytest.raises(JSLiteSyntaxError):
            parse("{ a;")

    def test_missing_paren(self):
        with pytest.raises(JSLiteSyntaxError):
            parse("if (a { b; }")

    def test_missing_semicolon_between_statements(self):
        with pytest.raises(JSLiteSyntaxError):
            parse("var a = 1 var b = 2;")

    def test_semicolon_optional_before_brace(self):
        parse("function f() { return 1 }")  # no error
