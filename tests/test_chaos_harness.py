"""Differential chaos sweep: injected faults must never change results.

For every registered fault site x every suite benchmark, run the
tracing VM with a fault injected at that site and assert the
observation (result, print output, user heap) is byte-identical to the
pure interpreter's.  This is the testable form of the paper's
graceful-degradation property: a JIT-internal failure may cost
performance, never correctness.
"""

from __future__ import annotations

import pytest

from repro import TracingVM, VMConfig
from repro.core import events
from repro.hardening import FAULT_SITES, FaultPlan
from repro.hardening.chaos import differential_check, run_and_observe
from repro.suite.programs import PROGRAMS

PROGRAMS_BY_NAME = {program.name: program for program in PROGRAMS}

#: Baseline observations, computed once per program for the whole sweep.
_BASELINES = {}


def baseline_for(name: str):
    if name not in _BASELINES:
        observation, _vm = run_and_observe(
            PROGRAMS_BY_NAME[name].source, engine="baseline"
        )
        _BASELINES[name] = observation
    return _BASELINES[name]


def assert_contained(vm):
    """If any fault actually fired, the firewall must have contained it."""
    tracing = vm.stats.tracing
    if tracing.faults_injected == 0:
        return
    assert tracing.internal_failures >= 1
    assert vm.events.counts.get(events.FAULT_INJECTED, 0) >= 1
    assert vm.events.counts.get(events.JIT_INTERNAL_FAILURE, 0) >= 1
    for event in vm.events.events:
        if event.kind == events.JIT_INTERNAL_FAILURE:
            assert event.payload["injected"] is True
            assert event.payload["site"] in FAULT_SITES


@pytest.mark.parametrize("site", FAULT_SITES)
@pytest.mark.parametrize("name", sorted(PROGRAMS_BY_NAME))
def test_single_fault_sweep(site, name):
    config = VMConfig(fault_plan={site: 1}, capture_events=True)
    vm = differential_check(
        PROGRAMS_BY_NAME[name].source, config, baseline=baseline_for(name)
    )
    assert_contained(vm)


@pytest.mark.parametrize("seed", range(8))
def test_seeded_chaos_plans(seed):
    # Seeded pseudo-random plans (the --chaos-seed path), on a workload
    # with nested loops, doubles, and calls so most sites are reachable.
    name = "3d-morph"
    config = VMConfig(chaos_seed=seed, capture_events=True)
    vm = differential_check(
        PROGRAMS_BY_NAME[name].source, config, baseline=baseline_for(name)
    )
    assert_contained(vm)
    # Same seed => same plan: determinism of the harness itself.
    assert repr(FaultPlan.from_seed(seed)) == repr(vm.faults.plan)


def test_every_hit_plan_drives_vm_into_safe_mode():
    # A fault on *every* compilation attempt trips the breaker: after
    # max_internal_failures containments the VM stops tracing entirely
    # -- and the program still computes the right answer.
    config = VMConfig(
        fault_plan={"compile.assemble": "*"},
        max_internal_failures=2,
        capture_events=True,
    )
    vm = differential_check(
        PROGRAMS_BY_NAME["access-nsieve"].source,
        config,
        baseline=baseline_for("access-nsieve"),
    )
    tracing = vm.stats.tracing
    assert tracing.safe_mode is True
    assert tracing.internal_failures >= 2
    assert vm.in_safe_mode is True
    assert vm.config.enable_tracing is False
    assert vm.monitor.disabled is True
    assert vm.events.counts.get(events.SAFE_MODE, 0) == 1


def test_repeated_single_site_faults_stay_contained():
    # Multiple distinct sites in one plan, each firing several times.
    config = VMConfig(
        fault_plan={"native.loop-edge": (2, 5), "record.op": 3},
        capture_events=True,
    )
    vm = differential_check(PROGRAMS_BY_NAME["bitops-nsieve-bits"].source, config)
    assert_contained(vm)


def test_chaos_run_emits_v3_schema_events():
    config = VMConfig(fault_plan={"compile.assemble": 1}, capture_events=True)
    vm = TracingVM(config)
    vm.run("var s = 0; for (var i = 0; i < 100; ++i) s += i; s;")
    lines = vm.events.to_jsonl().splitlines()
    assert lines
    import json

    first = json.loads(lines[0])
    assert first["schema_version"] == events.EVENT_SCHEMA_VERSION
