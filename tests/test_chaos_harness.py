"""Differential chaos sweep: injected faults must never change results.

For every registered fault site x every suite benchmark, run the
tracing VM with a fault injected at that site and assert the
observation (result, print output, user heap) is byte-identical to the
pure interpreter's.  This is the testable form of the paper's
graceful-degradation property: a JIT-internal failure may cost
performance, never correctness.
"""

from __future__ import annotations

import pytest

from repro import TracingVM, VMConfig
from repro.core import events
from repro.hardening import FAULT_SITES, FaultPlan
from repro.hardening.chaos import differential_check, run_and_observe
from repro.suite.programs import PROGRAMS

PROGRAMS_BY_NAME = {program.name: program for program in PROGRAMS}

#: Baseline observations, computed once per program for the whole sweep.
_BASELINES = {}


def baseline_for(name: str):
    if name not in _BASELINES:
        observation, _vm = run_and_observe(
            PROGRAMS_BY_NAME[name].source, engine="baseline"
        )
        _BASELINES[name] = observation
    return _BASELINES[name]


def assert_contained(vm):
    """If any fault actually fired, the firewall must have contained it."""
    tracing = vm.stats.tracing
    if tracing.faults_injected == 0:
        return
    assert tracing.internal_failures >= 1
    assert vm.events.counts.get(events.FAULT_INJECTED, 0) >= 1
    assert vm.events.counts.get(events.JIT_INTERNAL_FAILURE, 0) >= 1
    for event in vm.events.events:
        if event.kind == events.JIT_INTERNAL_FAILURE:
            assert event.payload["injected"] is True
            assert event.payload["site"] in FAULT_SITES


@pytest.mark.parametrize("site", FAULT_SITES)
@pytest.mark.parametrize("name", sorted(PROGRAMS_BY_NAME))
def test_single_fault_sweep(site, name):
    config = VMConfig(fault_plan={site: 1}, capture_events=True)
    vm = differential_check(
        PROGRAMS_BY_NAME[name].source, config, baseline=baseline_for(name)
    )
    assert_contained(vm)


@pytest.mark.parametrize("seed", range(8))
def test_seeded_chaos_plans(seed):
    # Seeded pseudo-random plans (the --chaos-seed path), on a workload
    # with nested loops, doubles, and calls so most sites are reachable.
    name = "3d-morph"
    config = VMConfig(chaos_seed=seed, capture_events=True)
    vm = differential_check(
        PROGRAMS_BY_NAME[name].source, config, baseline=baseline_for(name)
    )
    assert_contained(vm)
    # Same seed => same plan: determinism of the harness itself.
    assert repr(FaultPlan.from_seed(seed)) == repr(vm.faults.plan)


def test_every_hit_plan_drives_vm_into_safe_mode():
    # A fault on *every* compilation attempt trips the breaker: after
    # max_internal_failures containments the VM stops tracing entirely
    # -- and the program still computes the right answer.
    config = VMConfig(
        fault_plan={"compile.assemble": "*"},
        max_internal_failures=2,
        capture_events=True,
    )
    vm = differential_check(
        PROGRAMS_BY_NAME["access-nsieve"].source,
        config,
        baseline=baseline_for("access-nsieve"),
    )
    tracing = vm.stats.tracing
    assert tracing.safe_mode is True
    assert tracing.internal_failures >= 2
    assert vm.in_safe_mode is True
    assert vm.config.enable_tracing is False
    assert vm.monitor.disabled is True
    assert vm.events.counts.get(events.SAFE_MODE, 0) == 1


def test_repeated_single_site_faults_stay_contained():
    # Multiple distinct sites in one plan, each firing several times.
    config = VMConfig(
        fault_plan={"native.loop-edge": (2, 5), "record.op": 3},
        capture_events=True,
    )
    vm = differential_check(PROGRAMS_BY_NAME["bitops-nsieve-bits"].source, config)
    assert_contained(vm)


def test_chaos_run_emits_v3_schema_events():
    config = VMConfig(fault_plan={"compile.assemble": 1}, capture_events=True)
    vm = TracingVM(config)
    vm.run("var s = 0; for (var i = 0; i < 100; ++i) s += i; s;")
    lines = vm.events.to_jsonl().splitlines()
    assert lines
    import json

    first = json.loads(lines[0])
    assert first["schema_version"] == events.EVENT_SCHEMA_VERSION


# -- chaos composed with the execution supervisor ----------------------------
#
# The two failure domains must compose: injected JIT-internal faults go
# to the firewall, resource breaches go to the guest as typed faults,
# and generous limits must not perturb a chaos run's observable result.


@pytest.mark.parametrize("seed", range(4))
def test_seeded_chaos_with_generous_quotas_is_byte_identical(seed):
    from repro.exec import ResourceLimits

    name = "3d-morph"
    source = PROGRAMS_BY_NAME[name].source
    config = VMConfig(chaos_seed=seed, capture_events=True)
    vm = TracingVM(config)
    vm.install_meter(
        ResourceLimits(deadline_cycles=10**9, heap_quota=10**9,
                       output_quota=10**9, stack_quota=10**6)
    )
    result = vm.run(source)
    from repro.hardening.chaos import observe

    assert observe(vm, result) == baseline_for(name)
    assert_contained(vm)
    assert vm.meter.pending is None


@pytest.mark.parametrize("site", ["compile.assemble", "native.loop-edge",
                                  "record.op", "native.exit-restore"])
def test_injected_fault_inside_quota_limited_job_keeps_typed_fault(site):
    from repro.errors import ScriptTimeout
    from repro.exec import ResourceLimits

    config = VMConfig(fault_plan={site: (1, 2)}, capture_events=True)
    vm = TracingVM(config)
    vm.install_meter(ResourceLimits(deadline_cycles=250_000))
    with pytest.raises(ScriptTimeout):
        vm.run("var i = 0; while (true) { i = i + 1; }")
    # The injected internal fault was contained by the firewall while
    # the deadline still surfaced as the guest-fault domain's exception.
    assert_contained(vm)
    assert vm.stats.tracing.script_deadlines == 1
    assert vm.events.counts.get(events.SCRIPT_DEADLINE, 0) == 1


def test_supervisor_contains_chaos_jobs():
    from repro.exec import Job, ResourceLimits, Supervisor

    config = VMConfig(chaos_seed=3, capture_events=True)
    sup = Supervisor(
        config=config, limits=ResourceLimits(deadline_cycles=300_000)
    )
    results = sup.run([
        Job("fine", PROGRAMS_BY_NAME["bitops-bitwise-and"].source),
        Job("hang", "while (true) {}"),
    ])
    assert results[0].status == "ok"
    assert results[1].status == "timeout"
    assert_contained(sup.vm)
