"""Tests for the cycle ledger, execution profile, and VM stats."""

from repro.costs import Activity, CycleLedger
from repro.stats import ExecutionProfile, TraceStats, VMStats


class TestCycleLedger:
    def test_charge_and_total(self):
        ledger = CycleLedger()
        ledger.charge(Activity.INTERPRET, 10)
        ledger.charge(Activity.NATIVE, 30)
        assert ledger.total == 40

    def test_fractions(self):
        ledger = CycleLedger()
        ledger.charge(Activity.NATIVE, 75)
        ledger.charge(Activity.MONITOR, 25)
        assert ledger.fraction(Activity.NATIVE) == 0.75
        assert ledger.fraction(Activity.RECORD) == 0.0

    def test_empty_ledger_fraction_zero(self):
        assert CycleLedger().fraction(Activity.NATIVE) == 0.0

    def test_snapshot_and_reset(self):
        ledger = CycleLedger()
        ledger.charge(Activity.COMPILE, 5)
        snap = ledger.snapshot()
        assert snap["compile"] == 5
        ledger.reset()
        assert ledger.total == 0


class TestExecutionProfile:
    def test_fractions(self):
        profile = ExecutionProfile(interpreted=10, recorded=10, native=80)
        assert profile.fraction_native() == 0.8
        assert profile.fraction_interpreted() == 0.1
        assert profile.fraction_recorded() == 0.1

    def test_empty_profile(self):
        profile = ExecutionProfile()
        assert profile.fraction_native() == 0.0


class TestTraceStats:
    def test_abort_counting(self):
        stats = TraceStats()
        stats.count_abort("reason-a")
        stats.count_abort("reason-a")
        stats.count_abort("reason-b")
        assert stats.traces_aborted == 3
        assert stats.abort_reasons == {"reason-a": 2, "reason-b": 1}


class TestVMStats:
    def test_summary_lines_render(self):
        stats = VMStats()
        stats.ledger.charge(Activity.NATIVE, 100)
        stats.profile.native = 50
        stats.tracing.trees_formed = 2
        stats.tracing.count_abort("oops")
        lines = stats.summary_lines()
        text = "\n".join(lines)
        assert "total simulated cycles : 100" in text
        assert "trees formed           : 2" in text
        assert "oops" in text

    def test_time_breakdown_keys(self):
        stats = VMStats()
        breakdown = stats.time_breakdown()
        assert set(breakdown) == {"interpret", "monitor", "record", "compile", "native"}
