"""Tests for the switch statement (parser, compiler, all engines)."""

import pytest

from repro import BaselineVM
from repro.errors import JSLiteSyntaxError
from repro.frontend.parser import parse
from tests.helpers import assert_engines_agree


def value(source):
    return BaselineVM().run(source).payload


class TestParsing:
    def test_basic_shape(self):
        program = parse("switch (x) { case 1: a; break; default: b; }")
        stmt = program.body[0]
        assert len(stmt.cases) == 2
        assert stmt.cases[1][0] is None  # default

    def test_duplicate_default_rejected(self):
        with pytest.raises(JSLiteSyntaxError):
            parse("switch (x) { default: a; default: b; }")

    def test_empty_switch(self):
        program = parse("switch (x) { }")
        assert program.body[0].cases == []


class TestSemantics:
    def test_matching_case(self):
        assert value("var r; switch (2) { case 1: r = 'a'; break; case 2: r = 'b'; break; } r;") == "b"

    def test_default(self):
        assert value("var r; switch (9) { case 1: r = 'a'; break; default: r = 'd'; } r;") == "d"

    def test_fallthrough(self):
        assert value(
            "var r = ''; switch (1) { case 1: r += 'a'; case 2: r += 'b'; case 3: r += 'c'; } r;"
        ) == "abc"

    def test_break_stops_fallthrough(self):
        assert value(
            "var r = ''; switch (1) { case 1: r += 'a'; break; case 2: r += 'b'; } r;"
        ) == "a"

    def test_default_in_middle_falls_through(self):
        assert value(
            "var r = ''; switch (9) { case 1: r += 'a'; default: r += 'd'; case 2: r += 'b'; } r;"
        ) == "db"

    def test_strict_comparison(self):
        assert value("var r = 0; switch ('1') { case 1: r = 1; break; default: r = 2; } r;") == 2

    def test_discriminant_evaluated_once(self):
        assert value(
            "var n = 0; function bump() { n++; return 1; }"
            "switch (bump()) { case 1: break; case 1: break; }"
            "n;"
        ) == 1

    def test_no_match_no_default(self):
        assert value("var r = 'none'; switch (5) { case 1: r = 'x'; } r;") == "none"

    def test_nested_switch_in_loop_break_scoping(self):
        assert value(
            "var t = 0;"
            "for (var i = 0; i < 6; i++) {"
            "  switch (i % 3) { case 0: t += 1; break; case 1: t += 10; break; default: t += 100; }"
            "}"
            "t;"
        ) == 2 * (1 + 10 + 100)

    def test_continue_inside_switch_inside_loop(self):
        assert value(
            "var t = 0;"
            "for (var i = 0; i < 6; i++) {"
            "  switch (i % 2) { case 0: continue; }"
            "  t += i;"
            "}"
            "t;"
        ) == 1 + 3 + 5

    def test_var_hoisting_inside_cases(self):
        assert value(
            "function f(k) { switch (k) { case 1: var x = 5; break; } return x; } f(1);"
        ) == 5


SWITCH_LOOPS = [
    "var t = 0; for (var i = 0; i < 90; i++) { switch (i % 3) { case 0: t += 1; break; case 1: t += 2; break; default: t += 3; } } t;",
    "var t = ''; for (var i = 0; i < 30; i++) { switch (i & 1) { case 0: t += 'e'; break; default: t += 'o'; } } t;",
    "var t = 0; for (var i = 0; i < 60; i++) { switch (i % 4) { case 0: case 1: t += 1; break; case 2: t += 2; } } t;",
]


@pytest.mark.parametrize("source", SWITCH_LOOPS)
def test_switch_in_hot_loops_all_engines(source):
    assert_engines_agree(source, ("baseline", "threaded", "methodjit", "tracing"))


def test_switch_traces_well():
    from tests.helpers import run_tracing

    _r, vm = run_tracing(SWITCH_LOOPS[0])
    assert vm.stats.profile.fraction_native() > 0.8
    assert vm.stats.tracing.branch_traces >= 1
