"""Recorder-level tests: the LIR a recording produces for each construct
(paper Sections 3.1 and 6.3)."""

from repro import TracingVM
from tests.helpers import run_tracing


def main_tree(vm):
    trees = vm.monitor.cache.all_trees()
    return max(trees, key=lambda tree: tree.iterations)


def lir_ops(tree):
    return [ins.op for ins in tree.fragment.lir]


def call_names(tree):
    return [ins.imm.name for ins in tree.fragment.lir if ins.op == "call"]


class TestTypeSpecialization:
    def test_int_loop_uses_int_ops(self):
        _r, vm = run_tracing("var s = 0; for (var i = 0; i < 60; i++) s += i; s;")
        ops = lir_ops(main_tree(vm))
        assert "addi" in ops
        assert "addd" not in ops

    def test_double_loop_uses_double_ops(self):
        _r, vm = run_tracing("var s = 0.5; for (var i = 0; i < 60; i++) s += 0.25; s;")
        ops = lir_ops(main_tree(vm))
        assert "addd" in ops

    def test_int_arith_carries_overflow_guard(self):
        _r, vm = run_tracing("var s = 0; for (var i = 0; i < 60; i++) s += i; s;")
        tree = main_tree(vm)
        adds = [ins for ins in tree.fragment.lir if ins.op == "addi"]
        assert any(ins.exit is not None for ins in adds)

    def test_division_is_always_double(self):
        _r, vm = run_tracing("var s = 0; for (var i = 1; i < 60; i++) s += i / 2; s;")
        ops = lir_ops(main_tree(vm))
        assert "divd" in ops

    def test_bitops_convert_doubles_via_d2i32(self):
        _r, vm = run_tracing(
            "var s = 0; var d = 2.5; for (var i = 0; i < 60; i++) s ^= (d * i) & 7; s;"
        )
        ops = lir_ops(main_tree(vm))
        assert "d2i32" in ops

    def test_ushr_speculates_on_observed_range(self):
        # Small results: stay int with a fits-31-bit guard.
        _r, vm = run_tracing(
            "var s = 0; for (var i = 0; i < 60; i++) s += i >>> 2; s;"
        )
        ops = lir_ops(main_tree(vm))
        assert "ushri" in ops
        assert "gi31" in ops


class TestGuards:
    def test_branch_guard_per_if(self):
        _r, vm = run_tracing(
            "var s = 0; for (var i = 0; i < 60; i++) { if (i < 100) s += 1; } s;"
        )
        tree = main_tree(vm)
        ops = lir_ops(tree)
        assert "xf" in ops or "xt" in ops

    def test_callee_identity_guard(self):
        _r, vm = run_tracing(
            "function f(n) { return n; } var s = 0;"
            "for (var i = 0; i < 60; i++) s += f(i); s;"
        )
        tree = main_tree(vm)
        ops = lir_ops(tree)
        assert "eqp" in ops  # guard that the callee is the same function

    def test_element_load_guards_tag(self):
        _r, vm = run_tracing(
            "var a = [1, 2, 3]; var s = 0;"
            "for (var i = 0; i < 60; i++) s += a[i % 3]; s;"
        )
        tree = main_tree(vm)
        ops = lir_ops(tree)
        assert "gtag" in ops
        assert "ldelem" in ops
        assert "unbox" in ops

    def test_redundant_shape_guards_merged(self):
        # o.x + o.y: one shape guard suffices (CSE of guards).
        _r, vm = run_tracing(
            "var o = {x: 1, y: 2}; var s = 0;"
            "for (var i = 0; i < 60; i++) s += o.x + o.y; s;"
        )
        tree = main_tree(vm)
        shape_loads = [ins for ins in tree.fragment.lir if ins.op == "ldshape"]
        assert len(shape_loads) == 1


class TestInlining:
    def test_no_call_instruction_for_inlined_function(self):
        _r, vm = run_tracing(
            "function sq(n) { return n * n; } var s = 0;"
            "for (var i = 0; i < 60; i++) s += sq(i); s;"
        )
        tree = main_tree(vm)
        # The interpreted call is inlined: only typed-FFI/helper calls
        # may appear, and sq is neither.
        assert "sq" not in call_names(tree)
        assert "muli" in lir_ops(tree)

    def test_frame_entry_stores_recorded(self):
        _r, vm = run_tracing(
            "function add2(a, b) { return a + b; } var s = 0;"
            "for (var i = 0; i < 60; i++) s += add2(i, 1); s;"
        )
        tree = main_tree(vm)
        # Arguments become AR-resident (depth-1 local slots exist).
        depth1_locals = [
            loc for loc in tree.slot_of_loc if loc[0] == "local" and loc[1] == 1
        ]
        assert depth1_locals


class TestNativesOnTrace:
    def test_typed_ffi_direct_call(self):
        _r, vm = run_tracing(
            "var s = 0; for (var i = 0; i < 60; i++) s += Math.sqrt(i); Math.floor(s);"
        )
        tree = main_tree(vm)
        specs = [ins.imm for ins in tree.fragment.lir if ins.op == "call"]
        sqrt_specs = [spec for spec in specs if spec.name == "sqrt"]
        assert sqrt_specs and sqrt_specs[0].kind == "typed"

    def test_generic_native_boxed_call_with_result_guard(self):
        _r, vm = run_tracing(
            "var s = 0; var w = 'abcdef';"
            "for (var i = 0; i < 60; i++) s += w.charCodeAt(i % 6); s;"
        )
        tree = main_tree(vm)
        specs = [ins.imm for ins in tree.fragment.lir if ins.op == "call"]
        cca = [spec for spec in specs if spec.name == "charCodeAt"]
        assert cca and cca[0].kind == "boxed"
        assert "gtag" in lir_ops(tree)  # unpredictable result type

    def test_string_concat_helper(self):
        _r, vm = run_tracing(
            "var s = ''; for (var i = 0; i < 40; i++) s += 'x'; s.length;"
        )
        tree = main_tree(vm)
        assert "js_ConcatStrings" in call_names(tree)

    def test_number_to_string_helper(self):
        _r, vm = run_tracing(
            "var s = ''; for (var i = 0; i < 40; i++) s += i; s.length;"
        )
        tree = main_tree(vm)
        assert "js_NumberToString_i" in call_names(tree)


class TestAbortReasons:
    def abort_reason_of(self, source):
        vm = TracingVM()
        vm.run(source)
        return vm.stats.tracing.abort_reasons

    def test_throw(self):
        reasons = self.abort_reason_of(
            "var t = 0; for (var i = 0; i < 40; i++) { try { throw 1; } catch (e) { t += e; } } t;"
        )
        assert "try-block-on-trace" in reasons or "throw-on-trace" in reasons

    def test_untraceable_native(self):
        reasons = self.abort_reason_of(
            "var t = 0; for (var i = 0; i < 40; i++) t += hostEval('1'); t;"
        )
        assert "untraceable-native" in reasons

    def test_new_interpreted_constructor_traces(self):
        # Constructors inline like ordinary calls, with an allocation
        # helper providing `this` (no abort).
        from tests.helpers import run_tracing

        _r, vm = run_tracing(
            "function P(x) { this.x = x; } var t = 0;"
            "for (var i = 0; i < 40; i++) t += new P(i).x; t;"
        )
        assert "new-interpreted-constructor" not in vm.stats.tracing.abort_reasons
        assert vm.stats.profile.fraction_native() > 0.5
        tree = main_tree(vm)
        assert "js_NewObjectWithProto" in call_names(tree)

    def test_delete(self):
        reasons = self.abort_reason_of(
            "for (var i = 0; i < 40; i++) { var o = {x: 1}; delete o.x; }"
        )
        assert "delete-on-trace" in reasons

    def test_trace_too_long(self):
        from repro import VMConfig

        vm = TracingVM(VMConfig(max_trace_length=20))
        vm.run("var s = 0; for (var i = 0; i < 40; i++) s += i * i + i * 2 + 1; s;")
        assert "trace-too-long" in vm.stats.tracing.abort_reasons

    def test_typeof_object(self):
        reasons = self.abort_reason_of(
            "var o = {}; var t = ''; for (var i = 0; i < 40; i++) t = typeof o; t;"
        )
        assert "typeof-object" in reasons


class TestTraceShape:
    def test_stable_trace_has_single_entry_params(self):
        _r, vm = run_tracing(
            "function f(a) { var s = 0; for (var i = 0; i < 60; i++) s += a; return s; } f(3);"
        )
        tree = main_tree(vm)
        params = [ins for ins in tree.fragment.lir if ins.op == "param"]
        # Params only at the entry (TSSA: phi only at the entry point).
        first_non_param = next(
            index
            for index, ins in enumerate(tree.fragment.lir)
            if ins.op not in ("param", "const")
        )
        assert all(
            ins.op != "param" for ins in tree.fragment.lir[first_non_param:]
        )
        assert params

    def test_bytecount_positive(self):
        _r, vm = run_tracing("var s = 0; for (var i = 0; i < 60; i++) s += i; s;")
        tree = main_tree(vm)
        assert tree.fragment.bytecount > 5
