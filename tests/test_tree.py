"""Unit tests for TraceTree: AR layout, entry maps, fragment compilation."""

from repro.bytecode.compiler import compile_program
from repro.core.lir import LIns
from repro.core.tree import Fragment, TraceTree
from repro.core.typemap import TraceType
from repro.vm import VMConfig


def make_tree():
    code = compile_program("for (var i = 0; i < 3; i++) ;")
    loop = code.loops[0]
    return TraceTree(code, loop.header_pc, loop)


class TestSlotLayout:
    def test_slots_allocated_in_discovery_order(self):
        tree = make_tree()
        assert tree.slot_for(("local", 0, 0)) == 0
        assert tree.slot_for(("stack", 0, 0)) == 1
        assert tree.slot_for(("local", 0, 0)) == 0  # stable on re-query
        assert tree.n_location_slots == 2

    def test_loc_of_slot_inverse(self):
        tree = make_tree()
        slot = tree.slot_for(("this", 1))
        assert tree.loc_of_slot[slot] == ("this", 1)

    def test_slot_kinds_classification(self):
        tree = make_tree()
        stack_slot = tree.slot_for(("stack", 0, 0))
        anchor_local = tree.slot_for(("local", 0, 1))
        inline_local = tree.slot_for(("local", 1, 0))
        this_slot = tree.slot_for(("this", 1))
        kinds = tree.slot_kinds()
        assert kinds[stack_slot] == "stack"
        assert kinds[anchor_local] == "stack"  # anchor data
        assert kinds[inline_local] == "call"  # mirrors the call stack
        assert kinds[this_slot] == "call"


class TestEntryMap:
    def test_add_entry_location_deduplicates(self):
        tree = make_tree()
        slot1 = tree.add_entry_location(("local", 0, 0), TraceType.INT)
        slot2 = tree.add_entry_location(("local", 0, 0), TraceType.INT)
        assert slot1 == slot2
        assert len(tree.entry_typemap) == 1

    def test_entry_type_of(self):
        tree = make_tree()
        tree.add_entry_location(("local", 0, 0), TraceType.DOUBLE)
        assert tree.entry_type_of(("local", 0, 0)) is TraceType.DOUBLE
        assert tree.entry_type_of(("local", 0, 9)) is None

    def test_global_imports_conflict_detected(self):
        import pytest

        from repro.errors import VMInternalError

        tree = make_tree()
        tree.add_global_import("g", 0, TraceType.INT)
        tree.add_global_import("g", 0, TraceType.INT)  # idempotent
        assert len(tree.global_imports) == 1
        with pytest.raises(VMInternalError):
            tree.add_global_import("g", 0, TraceType.STRING)

    def test_known_global_names_union(self):
        tree = make_tree()
        tree.add_global_import("read", 0, TraceType.INT)
        tree.written_globals.add("written")
        assert tree.known_global_names() == {"read", "written"}

    def test_import_slot_set_encodes_globals_negative(self):
        tree = make_tree()
        tree.add_entry_location(("local", 0, 0), TraceType.INT)
        tree.add_global_import("g", 3, TraceType.INT)
        slots = tree.import_slot_set
        assert 0 in slots
        assert -(3 + 1) in slots


class TestFragmentCompilation:
    def test_compile_assigns_exits_and_spill_base(self):
        from repro.core.exits import LOOP, SideExit

        tree = make_tree()
        slot = tree.slot_for(("local", 0, 0))
        param = LIns("param", slot=slot, type="i")
        store = LIns("star", (param,), slot=slot)
        exit = SideExit(
            kind=LOOP, pc=0, frames=(), stack_depth0=0,
            livemap=(((("local", 0, 0)), TraceType.INT, slot),),
        )
        end = LIns("x", exit=exit)
        tree.compile_fragment(tree.fragment, [param, store, end], VMConfig())
        assert exit.fragment is tree.fragment
        assert exit.tree is tree
        assert tree.exits_by_id[exit.exit_id] is exit
        assert tree.fragment.spill_base == tree.n_location_slots
        assert tree.ar_size >= tree.n_location_slots

    def test_compile_cost_scales_with_lir(self):
        tree = make_tree()
        assert tree.compile_cost(100) > tree.compile_cost(10)

    def test_branch_fragment_kind(self):
        tree = make_tree()
        branch = Fragment(tree, "branch")
        assert branch.kind == "branch"
        assert "branch" in repr(branch)
