"""Side-exit restoration tests: deep operand stacks, frame synthesis,
boxed-result channels, and exit bookkeeping (paper Section 6.1)."""

from repro import TracingVM, VMConfig
from tests.helpers import assert_engines_agree, run_tracing


class TestMidExpressionExits:
    def test_type_guard_fails_deep_in_expression(self):
        # d[i] yields a string exactly once, mid-way through a nested
        # arithmetic expression: the exit must rebuild a 3-deep operand
        # stack and resume generically.
        source = (
            "var d = [1, 2, 3, 4];"
            "var out = '';"
            "for (var i = 0; i < 50; i++) {"
            "  if (i == 40) d[2] = 'S';"
            "  out = '' + (1 + (2 * (3 + d[i % 4])));"
            "}"
            "out;"
        )
        assert_engines_agree(source, ("baseline", "tracing"))

    def test_overflow_exit_mid_expression(self):
        source = (
            "var big = 2147483000;"
            "var t = 0;"
            "for (var i = 0; i < 50; i++) {"
            "  t = (big + i) - big + (t & 1023);"
            "}"
            "t;"
        )
        assert_engines_agree(source, ("baseline", "tracing"))

    def test_shape_guard_fails_mid_loop(self):
        # The object's shape changes while the loop is running natively.
        source = (
            "var o = {x: 1};"
            "var t = 0;"
            "for (var i = 0; i < 60; i++) {"
            "  if (i == 40) o.fresh = 9;"  # shape transition
            "  t += o.x;"
            "}"
            "t;"
        )
        assert_engines_agree(source, ("baseline", "tracing"))


class TestFrameSynthesis:
    def test_exit_restores_callee_locals(self):
        # The guard failure happens inside an inlined callee whose
        # locals must be synthesized into a real interpreter frame.
        source = (
            "function work(n) {"
            "  var local1 = n * 2;"
            "  var local2 = n + 100;"
            "  if (n == 45) return local1 + local2;"  # divergence
            "  return local1;"
            "}"
            "var t = 0;"
            "for (var i = 0; i < 60; i++) t += work(i);"
            "t;"
        )
        assert_engines_agree(source, ("baseline", "tracing"))

    def test_exit_restores_this_in_callee(self):
        source = (
            "function Holder(v) { this.v = v; }"
            "Holder.prototype.get = function () {"
            "  if (this.v == 37) return -1;"
            "  return this.v;"
            "};"
            "var objs = new Array(0);"
            "for (var s = 0; s < 60; s++) objs.push(new Holder(s));"
            "var t = 0;"
            "for (var i = 0; i < 60; i++) t += objs[i].get();"
            "t;"
        )
        assert_engines_agree(source, ("baseline", "tracing"))

    def test_two_levels_of_synthesis(self):
        source = (
            "function inner(n) { if (n == 50) return 1000; return n; }"
            "function outer(n) { var pre = n + 1; return inner(n) + pre; }"
            "var t = 0;"
            "for (var i = 0; i < 60; i++) t += outer(i);"
            "t;"
        )
        assert_engines_agree(source, ("baseline", "tracing"))


class TestBoxedResultChannel:
    def test_result_type_changes_repeatedly(self):
        # a[i % 3] alternates int / double / string: the TYPE exit's
        # boxed channel delivers each odd value intact, and at most one
        # branch specializes per exit.
        source = (
            "var a = [1, 2.5, 'x'];"
            "var out = '';"
            "for (var i = 0; i < 90; i++) out = '' + a[i % 3];"
            "out;"
        )
        vms = assert_engines_agree(source, ("baseline", "tracing"))

    def test_property_value_type_changes(self):
        source = (
            "var o = {v: 1};"
            "var out = '';"
            "for (var i = 0; i < 60; i++) {"
            "  if (i == 30) o.v = 'str';"
            "  out = '' + o.v;"
            "}"
            "out;"
        )
        assert_engines_agree(source, ("baseline", "tracing"))


class TestExitBookkeeping:
    def test_branch_recording_blocked_after_failed_attempt(self):
        # The divergent path contains an untraceable construct, so the
        # branch recording aborts and that exit is permanently blocked.
        source = (
            "var t = 0;"
            "for (var i = 0; i < 80; i++) {"
            "  if (i % 2 == 0) t += 1;"
            "  else t += hostEval('1');"
            "}"
            "t;"
        )
        _r, vm = run_tracing(source)
        trees = vm.monitor.cache.all_trees()
        blocked = [
            exit
            for tree in trees
            for exit in tree.exits_by_id.values()
            if exit.recording_blocked
        ]
        assert blocked

    def test_max_branch_traces_respected(self):
        config = VMConfig(max_branch_traces=2)
        source = (
            "var t = 0;"
            "for (var i = 0; i < 300; i++) {"
            "  switch (i % 5) {"
            "    case 0: t += 1; break;"
            "    case 1: t += 2; break;"
            "    case 2: t += 3; break;"
            "    case 3: t += 4; break;"
            "    default: t += 5;"
            "  }"
            "}"
            "t;"
        )
        _r, vm = run_tracing(source, config)
        for tree in vm.monitor.cache.all_trees():
            assert len(tree.branches) <= 2

    def test_exit_hit_counts_accumulate(self):
        _r, vm = run_tracing(
            "var t = 0;"
            "for (var i = 0; i < 100; i++) { if (i % 10 == 0) t += 5; else t += 1; }"
            "t;",
            VMConfig(exit_hotness_threshold=1000),  # never grow branches
        )
        trees = vm.monitor.cache.all_trees()
        hits = [
            exit.hit_count
            for tree in trees
            for exit in tree.exits_by_id.values()
        ]
        assert max(hits) > 5
