"""Unit tests for the backward filters: dead store elim + DCE."""

from repro.core.exits import BRANCH, SideExit
from repro.core.lir import LIns
from repro.jit.optimizer import run_backward_filters


def make_exit(live):
    """A minimal SideExit observing the given (loc, type, slot) triples."""
    return SideExit(kind=BRANCH, pc=0, frames=(), stack_depth0=0, livemap=tuple(live))


def star(value, slot):
    return LIns("star", (value,), slot=slot)


class TestDeadStoreElimination:
    def test_store_overwritten_before_any_exit_is_dead(self):
        value = LIns("const", imm=1, type="i")
        dead = star(value, 0)
        live = star(value, 0)
        loop = LIns("loop", aux=frozenset({0}))
        lir = [value, dead, live, loop]
        filtered, stats = run_backward_filters(lir, {0: "stack"})
        assert dead not in filtered
        assert live in filtered
        assert stats.dead_stack_stores == 1

    def test_store_observed_by_exit_kept(self):
        value = LIns("const", imm=1, type="i")
        cond = LIns("const", imm=True, type="b")
        observed = star(value, 0)
        exit = make_exit([(("stack", 0, 0), None, 0)])
        guard = LIns("xf", (cond,), exit=exit)
        rewrite = star(value, 0)
        loop = LIns("loop", aux=frozenset())
        lir = [value, cond, observed, guard, rewrite, loop]
        filtered, stats = run_backward_filters(lir, {0: "stack"})
        assert observed in filtered  # the exit can see it
        assert rewrite not in filtered  # dead after the last observation

    def test_store_never_observed_is_dead(self):
        # "Stores to locations that are off the top of the interpreter
        # stack at future exits are also dead."
        value = LIns("const", imm=1, type="i")
        scratch = star(value, 5)
        loop = LIns("loop", aux=frozenset({0}))
        filtered, stats = run_backward_filters(
            [value, scratch, loop], {0: "stack", 5: "stack"}
        )
        assert scratch not in filtered

    def test_loop_carried_store_kept(self):
        value = LIns("const", imm=1, type="i")
        carried = star(value, 0)
        loop = LIns("loop", aux=frozenset({0}))
        filtered, _stats = run_backward_filters([value, carried, loop], {0: "stack"})
        assert carried in filtered

    def test_call_stack_stores_counted_separately(self):
        value = LIns("const", imm=1, type="i")
        dead_local = star(value, 3)
        live_local = star(value, 3)
        loop = LIns("loop", aux=frozenset({3}))
        _filtered, stats = run_backward_filters(
            [value, dead_local, live_local, loop], {3: "call"}
        )
        assert stats.dead_call_stores == 1
        assert stats.dead_stack_stores == 0

    def test_global_store_live_across_guards(self):
        # Globals are flushed at any exit, so a global store before a
        # guard is always observable.
        value = LIns("const", imm=1, type="i")
        cond = LIns("const", imm=True, type="b")
        first = star(value, -1)
        guard = LIns("xf", (cond,), exit=make_exit([]))
        second = star(value, -1)
        loop = LIns("loop", aux=frozenset())
        filtered, _stats = run_backward_filters(
            [value, cond, first, guard, second, loop], {}
        )
        assert first in filtered
        assert second in filtered

    def test_global_store_shadowed_without_guard_is_dead(self):
        value = LIns("const", imm=1, type="i")
        first = star(value, -1)
        second = star(value, -1)
        loop = LIns("loop", aux=frozenset())
        filtered, _stats = run_backward_filters([value, first, second, loop], {})
        assert first not in filtered
        assert second in filtered

    def test_dse_disabled(self):
        value = LIns("const", imm=1, type="i")
        dead = star(value, 0)
        live = star(value, 0)
        loop = LIns("loop", aux=frozenset({0}))
        filtered, stats = run_backward_filters(
            [value, dead, live, loop], {0: "stack"}, enable_dse=False
        )
        assert dead in filtered
        assert stats.dead_stack_stores == 0


class TestDeadCodeElimination:
    def test_unused_pure_value_removed(self):
        a = LIns("const", imm=1, type="i")
        b = LIns("const", imm=2, type="i")
        unused = LIns("addi", (a, b), type="i")
        loop = LIns("loop", aux=frozenset())
        filtered, stats = run_backward_filters([a, b, unused, loop], {})
        assert unused not in filtered
        assert stats.dead_code >= 1

    def test_transitively_dead_chain_removed(self):
        a = LIns("const", imm=1, type="i")
        middle = LIns("negi", (a,), type="i")
        top = LIns("negi", (middle,), type="i")
        loop = LIns("loop", aux=frozenset())
        filtered, stats = run_backward_filters([a, middle, top, loop], {})
        assert middle not in filtered
        assert top not in filtered
        assert a not in filtered
        assert stats.dead_code == 3

    def test_value_used_by_guard_kept(self):
        cond = LIns("const", imm=True, type="b")
        guard = LIns("xf", (cond,), exit=make_exit([]))
        loop = LIns("loop", aux=frozenset())
        filtered, _stats = run_backward_filters([cond, guard, loop], {})
        assert cond in filtered

    def test_calls_never_removed(self):
        from repro.jit.native import CallSpec

        spec = CallSpec(kind="helper", name="effectful", fn=lambda vm: None)
        call = LIns("call", (), imm=spec, type="i")  # result unused
        loop = LIns("loop", aux=frozenset())
        filtered, _stats = run_backward_filters([call, loop], {})
        assert call in filtered

    def test_boxed_aux_of_guard_kept(self):
        box = LIns("ldar", slot=0, type="x")
        cond = LIns("const", imm=True, type="b")
        guard = LIns("xf", (cond,), exit=make_exit([]), aux=box)
        loop = LIns("loop", aux=frozenset())
        filtered, _stats = run_backward_filters([box, cond, guard, loop], {0: "stack"})
        assert box in filtered

    def test_dce_disabled(self):
        a = LIns("const", imm=1, type="i")
        unused = LIns("negi", (a,), type="i")
        loop = LIns("loop", aux=frozenset())
        filtered, _stats = run_backward_filters(
            [a, unused, loop], {}, enable_dce=False
        )
        assert unused in filtered


class TestCalltreeObservation:
    def test_calltree_keeps_mapped_stores(self):
        from repro.core.exits import CallTreeSite

        value = LIns("const", imm=1, type="i")
        mapped = star(value, 4)
        site = CallTreeSite(tree=None, depth=0, local_mapping=((0, 4),))
        call = LIns("calltree", imm=site, type="i")
        loop = LIns("loop", aux=frozenset())
        filtered, _stats = run_backward_filters(
            [value, mapped, call, loop], {4: "call"}
        )
        assert mapped in filtered
