"""Language-semantics tests for the baseline interpreter.

These define the reference behaviour every other engine (threaded,
method JIT, tracing) is differentially tested against.
"""

import math

import pytest

from repro import BaselineVM
from repro.errors import JSThrow
from repro.runtime.values import TAG_DOUBLE, TAG_INT


def run(source):
    return BaselineVM().run(source)


def value(source):
    return run(source).payload


class TestArithmetic:
    def test_basics(self):
        assert value("1 + 2;") == 3
        assert value("10 - 4;") == 6
        assert value("6 * 7;") == 42
        assert value("7 / 2;") == 3.5
        assert value("7 % 3;") == 1

    def test_precedence(self):
        assert value("2 + 3 * 4;") == 14
        assert value("(2 + 3) * 4;") == 20

    def test_unary(self):
        assert value("-5;") == -5
        assert value("+'42';") == 42
        assert value("!0;") is True
        assert value("~5;") == -6

    def test_number_representation(self):
        assert run("1 + 2;").tag == TAG_INT
        assert run("0.5 + 0.5;").tag == TAG_INT  # narrows back
        assert run("0.5 + 0.25;").tag == TAG_DOUBLE

    def test_string_concat(self):
        assert value("'a' + 'b' + 'c';") == "abc"
        assert value("1 + '2';") == "12"
        assert value("'' + true;") == "true"
        assert value("'' + null;") == "null"

    def test_nan_propagation(self):
        assert math.isnan(value("undefined + 1;"))
        assert value("NaN == NaN;") is False


class TestVariablesAndScope:
    def test_globals(self):
        assert value("var x = 1; x = x + 2; x;") == 3

    def test_locals_shadow_globals(self):
        assert value("var x = 1; function f() { var x = 2; return x; } f() * 10 + x;") == 21

    def test_function_reads_globals(self):
        assert value("var g = 5; function f() { return g; } f();") == 5

    def test_function_writes_globals(self):
        assert value("var g = 1; function f() { g = 7; } f(); g;") == 7

    def test_undefined_global_throws(self):
        with pytest.raises(JSThrow, match="ReferenceError"):
            run("missing;")

    def test_undefined_is_usable(self):
        assert value("var x; x === undefined;") is True


class TestControlFlow:
    def test_if_else(self):
        assert value("var r; if (1 < 2) r = 'a'; else r = 'b'; r;") == "a"

    def test_while(self):
        assert value("var n = 0; while (n < 5) n++; n;") == 5

    def test_do_while_runs_once(self):
        assert value("var n = 10; do n++; while (false); n;") == 11

    def test_for_break_continue(self):
        assert value(
            "var t = 0; for (var i = 0; i < 10; i++) { if (i == 3) continue; if (i == 6) break; t += i; } t;"
        ) == 0 + 1 + 2 + 4 + 5

    def test_nested_break_only_inner(self):
        assert value(
            "var t = 0;"
            "for (var i = 0; i < 3; i++) { for (var j = 0; j < 10; j++) { if (j == 2) break; t++; } }"
            "t;"
        ) == 6

    def test_short_circuit(self):
        assert value("var n = 0; function bump() { n++; return true; } false && bump(); n;") == 0
        assert value("var n = 0; function bump() { n++; return true; } true || bump(); n;") == 0
        assert value("0 || 'default';") == "default"
        assert value("1 && 2;") == 2

    def test_ternary(self):
        assert value("1 ? 2 : 3;") == 2

    def test_comma(self):
        assert value("(1, 2, 3);") == 3


class TestFunctions:
    def test_return_value(self):
        assert value("function f() { return 42; } f();") == 42

    def test_implicit_undefined_return(self):
        assert value("function f() { } f() === undefined;") is True

    def test_missing_args_are_undefined(self):
        assert value("function f(a, b) { return b === undefined; } f(1);") is True

    def test_extra_args_dropped(self):
        assert value("function f(a) { return a; } f(1, 2, 3);") == 1

    def test_recursion(self):
        assert value("function fib(n) { if (n < 2) return n; return fib(n-1) + fib(n-2); } fib(10);") == 55

    def test_mutual_recursion(self):
        assert value(
            "function isEven(n) { if (n == 0) return true; return isOdd(n - 1); }"
            "function isOdd(n) { if (n == 0) return false; return isEven(n - 1); }"
            "isEven(10);"
        ) is True

    def test_function_expression(self):
        assert value("var f = function (x) { return x + 1; }; f(4);") == 5

    def test_first_class_functions(self):
        assert value(
            "function apply(f, x) { return f(x); }"
            "function double(n) { return n * 2; }"
            "apply(double, 21);"
        ) == 42

    def test_call_non_function_throws(self):
        with pytest.raises(JSThrow, match="TypeError"):
            run("var x = 1; x();")


class TestObjects:
    def test_literal_and_access(self):
        assert value("var o = {a: 1, b: 2}; o.a + o.b;") == 3

    def test_missing_property_is_undefined(self):
        assert value("({}).missing === undefined;") is True

    def test_nested(self):
        assert value("var o = {inner: {x: 5}}; o.inner.x;") == 5

    def test_this_and_new(self):
        assert value(
            "function Point(x, y) { this.x = x; this.y = y; }"
            "var p = new Point(3, 4); p.x * 10 + p.y;"
        ) == 34

    def test_prototype_methods(self):
        assert value(
            "function Counter() { this.n = 0; }"
            "Counter.prototype.bump = function () { this.n = this.n + 1; return this.n; };"
            "var c = new Counter(); c.bump(); c.bump();"
        ) == 2

    def test_constructor_returning_object(self):
        assert value(
            "var other = {tag: 9};"
            "function F() { return other; }"
            "var got = new F(); got.tag;"
        ) == 9

    def test_delete(self):
        assert value("var o = {x: 1}; delete o.x; o.x === undefined;") is True

    def test_property_access_on_null_throws(self):
        with pytest.raises(JSThrow, match="TypeError"):
            run("null.x;")


class TestArrays:
    def test_literal_index_length(self):
        assert value("var a = [10, 20, 30]; a[1] + a.length;") == 23

    def test_write_and_grow(self):
        assert value("var a = []; a[0] = 1; a[5] = 2; a.length;") == 6

    def test_holes_are_undefined(self):
        assert value("var a = []; a[3] = 1; a[1] === undefined;") is True

    def test_computed_double_index(self):
        assert value("var a = [1, 2, 3]; a[1.0];") == 2

    def test_string_key_access(self):
        assert value("var o = {}; o['key'] = 7; o.key;") == 7

    def test_length_assignment_truncates(self):
        assert value("var a = [1,2,3,4]; a.length = 2; a[2] === undefined;") is True


class TestStrings:
    def test_indexing(self):
        assert value("'hello'[1];") == "e"
        assert value("'hi'[9] === undefined;") is True

    def test_methods(self):
        assert value("'hello'.charCodeAt(0);") == 104
        assert value("'hello'.charAt(4);") == "o"
        assert value("'hello'.indexOf('ll');") == 2
        assert value("'hello'.substring(1, 3);") == "el"
        assert value("'a-b-c'.split('-').length;") == 3
        assert value("'Hi'.toUpperCase();") == "HI"

    def test_comparison(self):
        assert value("'abc' < 'abd';") is True


class TestExceptions:
    def test_throw_catch(self):
        assert value("var r; try { throw 42; } catch (e) { r = e; } r;") == 42

    def test_uncaught_escapes(self):
        with pytest.raises(JSThrow):
            run("throw 'oops';")

    def test_finally_runs_on_both_paths(self):
        assert value(
            "var log = '';"
            "try { log += 'a'; } finally { log += 'f'; }"
            "try { try { throw 'x'; } finally { log += 'g'; } } catch (e) { log += e; }"
            "log;"
        ) == "afgx"

    def test_throw_across_frames(self):
        assert value(
            "function inner() { throw 'deep'; }"
            "function outer() { inner(); }"
            "var r; try { outer(); } catch (e) { r = e; } r;"
        ) == "deep"

    def test_native_typeerror_catchable(self):
        assert value("var r; try { null.x; } catch (e) { r = 'caught'; } r;") == "caught"


class TestUpdateExpressions:
    def test_prefix_vs_postfix_value(self):
        assert value("var x = 5; x++;") == 5
        assert value("var x = 5; ++x;") == 6
        assert value("var x = 5; x--; x;") == 4

    def test_member_update(self):
        assert value("var o = {n: 1}; o.n++; o.n;") == 2
        assert value("var a = [1]; ++a[0];") == 2
        assert value("var a = [5]; a[0]--;") == 5

    def test_update_coerces_to_number(self):
        assert value("var x = '5'; x++; x;") == 6


class TestPreemption:
    def test_preemption_serviced_on_backward_jump(self):
        vm = BaselineVM()
        vm.request_preemption()
        vm.run("for (var i = 0; i < 10; i++) ;")
        assert vm.preemptions_serviced == 1
        assert not vm.preempt_flag


class TestCompletionValue:
    def test_last_expression_wins(self):
        assert value("1; 2; 3;") == 3

    def test_statements_do_not_clobber(self):
        assert value("5; var x = 1;") == 5
