"""The example scripts must run end-to-end (they are documentation)."""

import pathlib
import subprocess
import sys

import pytest

EXAMPLES = sorted(
    (pathlib.Path(__file__).parent.parent / "examples").glob("*.py"),
    key=lambda path: path.name,
)


@pytest.mark.parametrize("script", EXAMPLES, ids=lambda p: p.name)
def test_example_runs(script):
    if script.name == "compare_vms.py":
        # The full-suite comparison is exercised by the benchmarks; run
        # it here on a small subset to keep the test fast.
        args = [sys.executable, str(script), "bitops-bitwise-and", "math-cordic"]
    else:
        args = [sys.executable, str(script)]
    completed = subprocess.run(
        args, capture_output=True, text=True, timeout=600
    )
    assert completed.returncode == 0, completed.stderr
    assert completed.stdout.strip()


def test_quickstart_reports_speedup():
    script = next(p for p in EXAMPLES if p.name == "quickstart.py")
    completed = subprocess.run(
        [sys.executable, str(script)], capture_output=True, text=True, timeout=600
    )
    assert "speedup" in completed.stdout


def test_sieve_walkthrough_shows_lir_and_native():
    script = next(p for p in EXAMPLES if p.name == "sieve_walkthrough.py")
    completed = subprocess.run(
        [sys.executable, str(script)], capture_output=True, text=True, timeout=600
    )
    assert "js_Array_set" in completed.stdout  # the Figure 3 call
    assert "native code" in completed.stdout
