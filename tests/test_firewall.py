"""Unit tests for the JIT firewall, fault plans, and safe mode."""

from __future__ import annotations

import pytest

from repro import BaselineVM, TracingVM, VMConfig
from repro.core import events
from repro.errors import VMInternalError
from repro.hardening import FAULT_SITES, FaultInjector, FaultPlan, InjectedFault

LOOP = "var s = 0; for (var i = 0; i < 300; ++i) s += i; s;"
LOOP_RESULT = "Box(int, 44850)"


def run_chaos(source: str, **config_kwargs):
    config = VMConfig(capture_events=True, **config_kwargs)
    vm = TracingVM(config)
    return vm.run(source), vm


class TestFaultPlan:
    def test_unknown_site_rejected(self):
        with pytest.raises(ValueError, match="unknown fault site"):
            FaultPlan({"no.such.site": 1})

    def test_parse_forms(self):
        plan = FaultPlan.parse(
            ["record.op", "compile.assemble:3", "native.loop-edge:*"]
        )
        assert plan.triggers("record.op", 1)
        assert not plan.triggers("record.op", 2)
        assert plan.triggers("compile.assemble", 3)
        assert plan.triggers("native.loop-edge", 999)
        assert not plan.triggers("native.entry", 1)

    def test_parse_rejects_garbage_count(self):
        with pytest.raises(ValueError, match="bad fault spec"):
            FaultPlan.parse(["record.op:soon"])

    def test_collection_trigger(self):
        plan = FaultPlan({"record.op": (2, 4)})
        assert [plan.triggers("record.op", n) for n in (1, 2, 3, 4)] == [
            False,
            True,
            False,
            True,
        ]

    def test_from_seed_is_deterministic(self):
        assert repr(FaultPlan.from_seed(42)) == repr(FaultPlan.from_seed(42))
        assert all(
            site in FAULT_SITES for site in FaultPlan.from_seed(7).spec
        )

    def test_injector_suspension(self):
        injector = FaultInjector(FaultPlan({"record.op": "*"}))
        injector.suspended += 1
        injector.fire("record.op")  # suppressed
        injector.suspended -= 1
        with pytest.raises(InjectedFault):
            injector.fire("record.op")
        assert injector.fired == ["record.op"]


class TestContainment:
    def test_contained_fault_preserves_result(self):
        result, vm = run_chaos(LOOP, fault_plan={"compile.assemble": 1})
        assert repr(result) == LOOP_RESULT
        tracing = vm.stats.tracing
        assert tracing.internal_failures == 1
        assert tracing.faults_injected == 1
        assert not tracing.safe_mode

    def test_failure_event_payload(self):
        _result, vm = run_chaos(LOOP, fault_plan={"compile.assemble": 1})
        failures = [
            event
            for event in vm.events.events
            if event.kind == events.JIT_INTERNAL_FAILURE
        ]
        assert len(failures) == 1
        payload = failures[0].payload
        assert payload["boundary"] == "compile"
        assert payload["error"] == "InjectedFault"
        assert payload["injected"] is True
        assert payload["site"] == "compile.assemble"
        assert payload["code"] and payload["pc"] is not None

    def test_firewall_off_lets_fault_escape(self):
        with pytest.raises(InjectedFault):
            run_chaos(
                LOOP,
                fault_plan={"compile.assemble": 1},
                enable_jit_firewall=False,
            )

    def test_fragment_retired_and_header_invalidated(self):
        _result, vm = run_chaos(LOOP, fault_plan={"native.entry": 1})
        # The faulting tree was pulled from the cache; a replacement may
        # have been compiled afterwards, but no tree still carries a
        # retired fragment.
        from repro.core.cache import FragmentState

        for tree in vm.monitor.cache.all_trees():
            assert tree.fragment.state is not FragmentState.RETIRED

    def test_stats_summary_mentions_firewall(self):
        _result, vm = run_chaos(LOOP, fault_plan={"record.op": 1})
        summary = "\n".join(vm.stats.summary_lines())
        assert "jit firewall" in summary
        assert "1 faults injected" in summary

    def test_profiler_records_trips(self):
        config = VMConfig(capture_events=True, fault_plan={"compile.assemble": 1})
        vm = TracingVM(config)
        vm.enable_profiling()
        vm.run(LOOP)
        profile = vm.profiler.to_dict()["firewall"]
        assert profile["trips"].get("compile") == 1


class TestNativeBudget:
    def test_budget_overrun_deopts_gracefully(self):
        result, vm = run_chaos(LOOP, native_insn_budget=50)
        assert repr(result) == LOOP_RESULT
        tracing = vm.stats.tracing
        assert tracing.internal_failures >= 1
        assert tracing.faults_injected == 0  # a real fault, not injected
        failures = [
            event
            for event in vm.events.events
            if event.kind == events.JIT_INTERNAL_FAILURE
        ]
        assert failures
        assert failures[0].payload["error"] == "NativeBudgetExceeded"
        assert failures[0].payload["injected"] is False

    def test_generous_budget_never_trips(self):
        result, vm = run_chaos(LOOP)
        assert repr(result) == LOOP_RESULT
        assert vm.stats.tracing.internal_failures == 0


class TestSafeMode:
    def test_breaker_trips_after_threshold(self):
        result, vm = run_chaos(
            "var t = 0;"
            "for (var i = 0; i < 60; ++i)"
            "  for (var j = 0; j < 60; ++j) t += j;"
            "t;",
            fault_plan={"compile.assemble": "*"},
            max_internal_failures=2,
        )
        assert repr(result) == "Box(int, 106200)"
        tracing = vm.stats.tracing
        assert tracing.safe_mode is True
        assert tracing.internal_failures >= 2
        assert vm.in_safe_mode is True
        assert vm.config.enable_tracing is False
        assert vm.monitor.disabled is True
        assert vm.events.counts.get(events.SAFE_MODE, 0) == 1
        # The breaker flushes the cache: nothing stays linked.
        assert vm.monitor.cache.tree_count == 0

    def test_safe_mode_stops_new_recordings(self):
        _result, vm = run_chaos(
            LOOP + " var u = 0; for (var k = 0; k < 300; ++k) u += k; u;",
            fault_plan={"compile.assemble": "*"},
            max_internal_failures=1,
        )
        assert vm.in_safe_mode
        # After the breaker trips no further compilations are attempted,
        # so the every-hit plan stops firing.
        last_failure = max(
            event.seq
            for event in vm.events.events
            if event.kind == events.JIT_INTERNAL_FAILURE
        )
        safe_mode_at = next(
            event.seq
            for event in vm.events.events
            if event.kind == events.SAFE_MODE
        )
        assert last_failure <= safe_mode_at


class TestHostEvalBoundary:
    SOURCE = 'hostEval("2.5 + 2.5");'

    def test_host_eval_still_swallows_user_errors(self):
        vm = BaselineVM()
        result = vm.run('hostEval("not ! valid @ python");')
        assert repr(result) == "Box(undefined, None)"

    def test_internal_error_propagates(self, monkeypatch):
        from repro.runtime import builtins as builtins_module

        def boom(text):
            raise VMInternalError("internal invariant violated")

        monkeypatch.setattr(builtins_module, "_host_eval_compute", boom)
        vm = BaselineVM()
        with pytest.raises(VMInternalError):
            vm.run(self.SOURCE)

    def test_normal_host_eval_works(self):
        vm = BaselineVM()
        assert repr(vm.run('hostEval("2.5 + 3");')) == "Box(double, 5.5)"
