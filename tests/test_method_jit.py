"""Tests for the method-JIT baseline (the V8-like comparator)."""

import pytest

from repro import BaselineVM
from repro.baselines.method_jit import MethodJITVM
from repro.costs import Activity
from tests.helpers import assert_engines_agree

PROGRAMS = [
    "var s = 0; for (var i = 0; i < 100; i++) s += i; s;",
    "function sq(n) { return n * n; } var t = 0; for (var i = 0; i < 50; i++) t += sq(i); t;",
    "var o = {x: 1, y: 2}; var t = 0; for (var i = 0; i < 60; i++) t += o.x + o.y; t;",
    "var a = [1, 2, 3]; a.push(4); a.join('-');",
    "function C(v) { this.v = v; } new C(7).v;",
    "var x; try { throw 'e'; } catch (err) { x = err; } x;",
    "var t = 0; for (var i = 0; i < 40; i++) t += hostEval('3');  t;",
    "function fib(n) { if (n < 2) return n; return fib(n-1)+fib(n-2); } fib(12);",
    "'abc'.charCodeAt(1) + 'xy'.length;",
    "var b = -1; for (var i = 0; i < 100; i++) b = b & ~i; b;",
    "var s = ''; for (var i = 0; i < 20; i++) s += i; s;",
]


@pytest.mark.parametrize("source", PROGRAMS)
def test_methodjit_agrees_with_baseline(source):
    assert_engines_agree(source, ("baseline", "methodjit"))


class TestCompilation:
    def test_methods_compiled_once(self):
        vm = MethodJITVM()
        vm.run("function f() { return 1; } f(); f(); f();")
        fn_codes = [m for m in vm._methods.values()]
        assert len(fn_codes) == 2  # toplevel + f

    def test_compile_cost_charged(self):
        vm = MethodJITVM()
        vm.run("var x = 1;")
        assert vm.stats.ledger.by_activity[Activity.COMPILE] > 0

    def test_execution_charged_to_native(self):
        vm = MethodJITVM()
        vm.run("var s = 0; for (var i = 0; i < 50; i++) s += i;")
        ledger = vm.stats.ledger
        assert ledger.by_activity[Activity.NATIVE] > ledger.by_activity[Activity.COMPILE]


class TestInlineCaches:
    def test_monomorphic_getprop_hits(self):
        vm = MethodJITVM()
        vm.run(
            "function get(o) { return o.x; }"
            "var o = {x: 1}; var t = 0;"
            "for (var i = 0; i < 100; i++) t += get(o);"
        )
        method = next(
            m for m in vm._methods.values() if m.code.name == "get"
        )
        ic = method.ics[0]
        assert ic.hits > 90
        assert ic.misses == 1

    def test_polymorphic_getprop_misses(self):
        vm = MethodJITVM()
        vm.run(
            "function get(o) { return o.x; }"
            "var a = {x: 1}; var b = {y: 0, x: 2}; var t = 0;"
            "for (var i = 0; i < 40; i++) t += get(i % 2 ? a : b);"
        )
        method = next(m for m in vm._methods.values() if m.code.name == "get")
        ic = method.ics[0]
        assert ic.misses > 10  # shapes alternate: the cache keeps missing

    def test_setprop_ic(self):
        vm = MethodJITVM()
        vm.run(
            "var o = {n: 0};"
            "for (var i = 0; i < 100; i++) o.n = i;"
        )
        method = next(iter(vm._methods.values()))
        set_ics = [ic for ic in method.ics if ic.hits or ic.misses]
        assert any(ic.hits > 50 for ic in set_ics)


class TestPerformanceShape:
    def test_faster_than_interpreter_on_loops(self):
        source = "var s = 0; for (var i = 0; i < 2000; i++) s += i & 0xff; s;"
        base = BaselineVM()
        base.run(source)
        jit = MethodJITVM()
        jit.run(source)
        assert base.stats.total_cycles / jit.stats.total_cycles > 2.0

    def test_speeds_up_recursion_too(self):
        # Unlike tracing, a method JIT compiles recursive code.
        source = "function fib(n) { if (n < 2) return n; return fib(n-1)+fib(n-2); } fib(15);"
        base = BaselineVM()
        base.run(source)
        jit = MethodJITVM()
        jit.run(source)
        assert base.stats.total_cycles / jit.stats.total_cycles > 1.5

    def test_profile_counts_bytecodes_as_native(self):
        vm = MethodJITVM()
        vm.run("var s = 0; for (var i = 0; i < 50; i++) s += i;")
        assert vm.stats.profile.native > 0
        assert vm.stats.profile.interpreted == 0


class TestVMInterface:
    def test_output_and_reenter(self):
        vm = MethodJITVM()
        vm.run("print('a'); function f() { return 1; } reenter(f);")
        assert vm.output == ["a"]

    def test_preemption(self):
        vm = MethodJITVM()
        vm.request_preemption()
        vm.run("for (var i = 0; i < 10; i++) ;")
        assert vm.preemptions_serviced == 1
