"""The persistent trace store: warm start, corruption tolerance, chaos.

The robustness contract under test (see docs/INTERNALS.md, The
persistent trace store):

* **Differential warm start** — a fresh VM preloading a source's
  persisted traces must be observationally identical to the same VM
  having traced that source itself and run it a second time: same
  result, same simulated-cycle bill, same output, same trace-lifecycle
  event stream (modulo the store's own events and the process-global
  exit-id counter).
* **Containment** — every store failure (truncation, bit flips, stale
  schema/fingerprint, partial writes, load races, injected chaos) is a
  ``store.*`` firewall boundary: the run falls back to cold tracing
  with a typed ``store-fallback`` event and an unchanged result.
* **Coherence** — cache flush / header invalidation supersede the
  persisted entries, saves onto a foreign store reinitialize it, and
  the size budget evicts oldest-generation entries first.
"""

from __future__ import annotations

import json
import os
import pathlib

import pytest

from repro.core import events as eventkind
from repro.core.store import (
    MANIFEST_NAME,
    STORE_SCHEMA,
    TraceStore,
    config_fingerprint,
    source_sha,
)
from repro.hardening import FaultPlan
from repro.hardening import faults as fault_sites
from repro.suite.programs import PROGRAMS
from repro.vm import TracingVM, VMConfig

SIEVE_PATH = pathlib.Path(__file__).parent.parent / "examples" / "sieve.js"

#: The store's own event kinds, absent from a cold reference stream.
STORE_KINDS = {
    eventkind.STORE_SAVE,
    eventkind.STORE_LOAD,
    eventkind.STORE_FALLBACK,
}

LOOP_SOURCE = "var s = 0; for (var i = 0; i < 2000; i++) s += i; s;"
OTHER_SOURCE = "var p = 1; for (var i = 1; i < 900; i++) p = (p + i) % 97; p;"
THIRD_SOURCE = "var t = 0; for (var i = 0; i < 1200; i++) t += i % 7; t;"


def _config(store=None, backend="py", **overrides):
    config = VMConfig()
    config.native_backend = backend
    if store is not None:
        config.trace_store = str(store)
    for name, value in overrides.items():
        setattr(config, name, value)
    return config


def _normalized_events(vm, skip_store: bool):
    """(kind, payload-json) pairs, exit ids renumbered first-seen."""
    renumber = {}
    normalized = []
    for event in vm.events.events:
        if skip_store and event.kind in STORE_KINDS:
            continue
        payload = dict(event.payload)
        for key, value in payload.items():
            if key.endswith("exit_id") and isinstance(value, int):
                payload[key] = renumber.setdefault(value, len(renumber) + 1)
        normalized.append(
            (event.kind, json.dumps(payload, sort_keys=True, default=repr))
        )
    return normalized


def _second_run_reference(source: str, name: str, backend: str):
    """Trace ``source`` on one VM, then run the *same Code* again after a
    guest-state reset: the in-memory warm run a preloaded VM must match."""
    vm = TracingVM(_config(backend=backend))
    vm.events.capture = True
    code = vm.compile(source, name=name)
    vm.run_code(code)
    cycles_before = vm.stats.total_cycles
    vm.events.clear()
    vm.reset_guest_state()
    result = vm.run_code(code)
    return {
        "result": repr(result),
        "cycles": vm.stats.total_cycles - cycles_before,
        "output": list(vm.output),
        "events": _normalized_events(vm, skip_store=False),
    }


def _warm_run(store_dir, source: str, name: str, backend: str):
    """Populate the store cold, then run once on a fresh preloaded VM."""
    writer = TracingVM(_config(store_dir, backend))
    writer.run(source, name=name)
    warm = TracingVM(_config(store_dir, backend))
    warm.events.capture = True
    cycles_before = warm.stats.total_cycles
    result = warm.run(source, name=name)
    return {
        "result": repr(result),
        "cycles": warm.stats.total_cycles - cycles_before,
        "output": list(warm.output),
        "events": _normalized_events(warm, skip_store=True),
    }, warm


def _assert_warm_identical(store_dir, source: str, name: str, backend: str):
    reference = _second_run_reference(source, name, backend)
    warm, warm_vm = _warm_run(store_dir, source, name, backend)

    loads = warm_vm.events.of_kind(eventkind.STORE_LOAD)
    assert loads and loads[0].payload["result"] == "hit", name
    assert not warm_vm.events.of_kind(eventkind.STORE_FALLBACK), name

    assert warm["result"] == reference["result"], name
    assert warm["cycles"] == reference["cycles"], name
    assert warm["output"] == reference["output"], name
    assert warm["events"] == reference["events"], name


# -- the differential proof -------------------------------------------------------


@pytest.mark.parametrize("backend", ("py", "step"))
@pytest.mark.parametrize("program", PROGRAMS, ids=lambda p: p.name)
def test_warm_start_identical_to_second_run(program, backend, tmp_path):
    _assert_warm_identical(tmp_path, program.source, program.name, backend)


@pytest.mark.parametrize("backend", ("py", "step"))
def test_sieve_warm_start_identical(backend, tmp_path):
    _assert_warm_identical(tmp_path, SIEVE_PATH.read_text(), "sieve.js", backend)


def test_rerun_determinism_regression(tmp_path):
    """regexp-dna-lite regression: an outer tree recorded while its inner
    tree had no branches must not bake pre-call global constants across
    the tree call (the inner tree later grows a branch that writes
    them).  Warm start surfaced this as run-2 diverging from run-1."""
    program = next(p for p in PROGRAMS if p.name == "regexp-dna-lite")
    vm = TracingVM(_config())
    code = vm.compile(program.source, name=program.name)
    first = vm.run_code(code)
    vm.reset_guest_state()
    second = vm.run_code(code)
    assert repr(first) == repr(second)
    _assert_warm_identical(tmp_path, program.source, program.name, "py")


# -- chaos sites ------------------------------------------------------------------

CHAOS_PROGRAMS = [
    p for p in PROGRAMS
    if p.name in ("bitops-bitwise-and", "math-cordic", "string-fasta",
                  "controlflow-recursive", "regexp-dna-lite")
]


@pytest.mark.parametrize("program", CHAOS_PROGRAMS, ids=lambda p: p.name)
@pytest.mark.parametrize("site", (fault_sites.STORE_CORRUPT_ENTRY,
                                  fault_sites.STORE_LOAD_RACE))
def test_load_chaos_contained(site, program, tmp_path):
    """An injected fault while loading degrades to cold tracing with a
    typed fallback — the result must not change."""
    reference = TracingVM(_config())
    expected = repr(reference.run(program.source, name=program.name))

    writer = TracingVM(_config(tmp_path))
    writer.run(program.source, name=program.name)

    config = _config(tmp_path)
    config.fault_plan = FaultPlan.parse([f"{site}:1"])
    vm = TracingVM(config)
    vm.events.capture = True
    result = vm.run(program.source, name=program.name)

    assert repr(result) == expected
    fallbacks = vm.events.of_kind(eventkind.STORE_FALLBACK)
    assert fallbacks and fallbacks[0].payload["boundary"] == "store.load"
    internal = vm.events.of_kind(eventkind.JIT_INTERNAL_FAILURE)
    assert any(e.payload["boundary"] == "store.load" and e.payload["injected"]
               for e in internal)
    assert vm.events.of_kind(eventkind.FAULT_INJECTED)
    assert not vm.in_safe_mode


@pytest.mark.parametrize("program", CHAOS_PROGRAMS, ids=lambda p: p.name)
def test_partial_write_chaos_contained(program, tmp_path):
    """A writer dying between the temp write and the rename leaves no
    torn entry: the save is refused, the run is unaffected, and a later
    reader sees either nothing or a fully consistent store."""
    reference = TracingVM(_config())
    expected = repr(reference.run(program.source, name=program.name))

    config = _config(tmp_path)
    config.fault_plan = FaultPlan.parse(
        [f"{fault_sites.STORE_PARTIAL_WRITE}:1"])
    writer = TracingVM(config)
    writer.events.capture = True
    result = writer.run(program.source, name=program.name)

    assert repr(result) == expected
    fallbacks = writer.events.of_kind(eventkind.STORE_FALLBACK)
    assert fallbacks and fallbacks[0].payload["boundary"] == "store.save"
    # No manifest was written, so a fresh VM gets a clean miss and a
    # correct cold run — never a torn entry.
    warm = TracingVM(_config(tmp_path))
    warm.events.capture = True
    assert repr(warm.run(program.source, name=program.name)) == expected
    loads = warm.events.of_kind(eventkind.STORE_LOAD)
    assert loads and loads[0].payload["result"] == "miss"
    assert not warm.events.of_kind(eventkind.STORE_FALLBACK)


def test_store_fault_escapes_without_firewall(tmp_path):
    """Like every other site: with the firewall down, injected store
    faults must escape (chaos runs prove containment is real)."""
    from repro.hardening.faults import InjectedFault

    writer = TracingVM(_config(tmp_path))
    writer.run(LOOP_SOURCE, name="loop")

    config = _config(tmp_path)
    config.enable_jit_firewall = False
    config.fault_plan = FaultPlan.parse(
        [f"{fault_sites.STORE_CORRUPT_ENTRY}:1"])
    vm = TracingVM(config)
    with pytest.raises(InjectedFault):
        vm.run(LOOP_SOURCE, name="loop")


# -- corruption and refusal -------------------------------------------------------


def _populate(store_dir, source=LOOP_SOURCE, name="loop", **overrides):
    writer = TracingVM(_config(store_dir, **overrides))
    writer.run(source, name=name)
    return writer


def _warm_vm(store_dir, source=LOOP_SOURCE, name="loop", **overrides):
    vm = TracingVM(_config(store_dir, **overrides))
    vm.events.capture = True
    result = vm.run(source, name=name)
    return result, vm


def _entry_path(store_dir, source=LOOP_SOURCE):
    return os.path.join(str(store_dir), f"e-{source_sha(source)}.json")


def _fallback_reasons(vm):
    return [e.payload["reason"]
            for e in vm.events.of_kind(eventkind.STORE_FALLBACK)]


def test_truncated_entry_refused(tmp_path):
    _populate(tmp_path)
    path = _entry_path(tmp_path)
    data = open(path, "rb").read()
    with open(path, "wb") as handle:
        handle.write(data[: len(data) // 2])
    result, vm = _warm_vm(tmp_path)
    assert repr(result) == repr(TracingVM(_config()).run(LOOP_SOURCE))
    assert _fallback_reasons(vm) == ["checksum-mismatch"]


def test_bitflipped_entry_refused(tmp_path):
    _populate(tmp_path)
    path = _entry_path(tmp_path)
    data = bytearray(open(path, "rb").read())
    data[len(data) // 2] ^= 0x40
    with open(path, "wb") as handle:
        handle.write(bytes(data))
    _result, vm = _warm_vm(tmp_path)
    assert _fallback_reasons(vm) == ["checksum-mismatch"]


def test_valid_checksum_garbage_entry_refused(tmp_path):
    """Corruption the checksum cannot catch (a writer bug) still fails
    closed at the JSON/schema layer."""
    import hashlib

    _populate(tmp_path)
    path = _entry_path(tmp_path)
    garbage = b"not json at all"
    with open(path, "wb") as handle:
        handle.write(garbage)
    manifest_path = os.path.join(str(tmp_path), MANIFEST_NAME)
    manifest = json.load(open(manifest_path))
    record = manifest["entries"][source_sha(LOOP_SOURCE)]
    record["sha256"] = hashlib.sha256(garbage).hexdigest()
    record["size"] = len(garbage)
    with open(manifest_path, "w") as handle:
        json.dump(manifest, handle)
    _result, vm = _warm_vm(tmp_path)
    assert _fallback_reasons(vm) == ["corrupt-entry"]


def test_missing_entry_file_refused(tmp_path):
    _populate(tmp_path)
    os.remove(_entry_path(tmp_path))
    _result, vm = _warm_vm(tmp_path)
    assert _fallback_reasons(vm) == ["entry-missing"]


def test_truncated_manifest_refuses_store_and_save_reinitializes(tmp_path):
    _populate(tmp_path)
    manifest_path = os.path.join(str(tmp_path), MANIFEST_NAME)
    data = open(manifest_path, "rb").read()
    with open(manifest_path, "wb") as handle:
        handle.write(data[: len(data) // 2])
    result, vm = _warm_vm(tmp_path)
    assert repr(result) == repr(TracingVM(_config()).run(LOOP_SOURCE))
    assert _fallback_reasons(vm) == ["manifest-corrupt"]
    # The same run's exit save reinitialized the store: the manifest is
    # whole again and the next VM warm-starts cleanly.
    manifest = json.load(open(manifest_path))
    assert manifest["schema"] == STORE_SCHEMA
    _result, fresh = _warm_vm(tmp_path)
    loads = fresh.events.of_kind(eventkind.STORE_LOAD)
    assert loads and loads[0].payload["result"] == "hit"
    assert not fresh.events.of_kind(eventkind.STORE_FALLBACK)


def test_stale_schema_refused(tmp_path):
    _populate(tmp_path)
    manifest_path = os.path.join(str(tmp_path), MANIFEST_NAME)
    manifest = json.load(open(manifest_path))
    manifest["schema"] = STORE_SCHEMA + 1
    with open(manifest_path, "w") as handle:
        json.dump(manifest, handle)
    _result, vm = _warm_vm(tmp_path)
    assert _fallback_reasons(vm) == ["schema-mismatch"]


@pytest.mark.parametrize("overrides", (
    {"opt_level": 1},
    {"backend": "step"},
    {"hotness_threshold": 17},
), ids=("opt-level", "native-backend", "cost-knob"))
def test_fingerprint_mismatch_refused(overrides, tmp_path):
    """Traces persisted under one configuration must never link into a
    VM whose config-cost fingerprint differs."""
    _populate(tmp_path)  # defaults: py backend, opt 2
    _result, vm = _warm_vm(tmp_path, **overrides)
    assert _fallback_reasons(vm) == ["fingerprint-mismatch"]


def test_cost_model_change_refused(tmp_path, monkeypatch):
    """A rebuilt cost table silently changes every cycle bill; the
    fingerprint folds the table in, so old stores are refused."""
    from repro import costs

    _populate(tmp_path)
    monkeypatch.setattr(costs, "NATIVE_CALL", costs.NATIVE_CALL + 1)
    _result, vm = _warm_vm(tmp_path)
    assert _fallback_reasons(vm) == ["fingerprint-mismatch"]


def test_save_onto_foreign_store_reinitializes(tmp_path):
    """Writing with a different fingerprint reinitializes the store
    rather than mixing incompatible entries."""
    _populate(tmp_path)  # fingerprint A
    old_entry = _entry_path(tmp_path)
    assert os.path.exists(old_entry)

    writer = _populate(tmp_path, source=OTHER_SOURCE, name="other",
                       opt_level=1)  # fingerprint B
    manifest = json.load(open(os.path.join(str(tmp_path), MANIFEST_NAME)))
    assert manifest["fingerprint"] == config_fingerprint(writer.config)
    assert list(manifest["entries"]) == [source_sha(OTHER_SOURCE)]
    assert not os.path.exists(old_entry)


# -- supersede (cache flush / invalidation) ---------------------------------------


def test_flush_supersedes_persisted_entries(tmp_path):
    writer = _populate(tmp_path)
    writer.monitor.cache.flush("test-flush")
    manifest = json.load(open(os.path.join(str(tmp_path), MANIFEST_NAME)))
    record = manifest["entries"][source_sha(LOOP_SOURCE)]
    assert record["superseded"] is True
    # A superseded entry is a plain miss, not an error.
    _result, vm = _warm_vm(tmp_path)
    loads = vm.events.of_kind(eventkind.STORE_LOAD)
    assert loads and loads[0].payload["result"] == "miss"
    assert not vm.events.of_kind(eventkind.STORE_FALLBACK)


def test_invalidate_header_supersedes_entry(tmp_path):
    writer = _populate(tmp_path)
    cache = writer.monitor.cache
    tree = cache.all_trees()[0]
    cache.invalidate_header(tree.code, tree.header_pc, "test")
    manifest = json.load(open(os.path.join(str(tmp_path), MANIFEST_NAME)))
    record = manifest["entries"][source_sha(LOOP_SOURCE)]
    assert record["superseded"] is True


def test_warm_start_cannot_resurrect_flushed_traces(tmp_path):
    writer = _populate(tmp_path)
    writer.monitor.cache.flush("test-flush")
    _result, vm = _warm_vm(tmp_path)
    assert not vm.events.of_kind(eventkind.STORE_FALLBACK)
    # The warm VM re-traced from scratch (and re-persisted): its run
    # recorded a root trace instead of loading one.
    assert vm.events.counts.get(eventkind.RECORD_START, 0) > 0


# -- eviction and concurrency -----------------------------------------------------


def test_eviction_oldest_generation_first(tmp_path):
    sources = [(LOOP_SOURCE, "loop"), (OTHER_SOURCE, "other"),
               (THIRD_SOURCE, "third")]
    probe = TracingVM(_config(tmp_path))
    probe.run(LOOP_SOURCE, name="loop")
    entry_size = os.path.getsize(_entry_path(tmp_path))

    store_dir = tmp_path / "budgeted"
    budget = int(entry_size * 2.5)
    for source, name in sources:
        vm = TracingVM(_config(store_dir, trace_store_budget=budget))
        vm.events.capture = True
        vm.run(source, name=name)
    manifest = json.load(open(os.path.join(str(store_dir), MANIFEST_NAME)))
    kept = set(manifest["entries"])
    assert source_sha(THIRD_SOURCE) in kept  # newest is never evicted
    assert source_sha(LOOP_SOURCE) not in kept  # oldest went first
    saves = vm.events.of_kind(eventkind.STORE_SAVE)
    assert saves and saves[-1].payload["evicted"] >= 1
    # No orphaned entry files remain behind the manifest.
    on_disk = {name for name in os.listdir(str(store_dir))
               if name.startswith("e-")}
    assert on_disk == {rec["file"] for rec in manifest["entries"].values()}


def test_concurrent_writers_merge(tmp_path):
    """Two VMs sharing one store directory: each save re-reads and
    merges the manifest, so neither writer's entries are lost."""
    vm_a = TracingVM(_config(tmp_path))
    vm_b = TracingVM(_config(tmp_path))
    vm_a.run(LOOP_SOURCE, name="a")
    vm_b.run(OTHER_SOURCE, name="b")
    vm_a.run(THIRD_SOURCE, name="a2")
    manifest = json.load(open(os.path.join(str(tmp_path), MANIFEST_NAME)))
    assert set(manifest["entries"]) == {
        source_sha(LOOP_SOURCE), source_sha(OTHER_SOURCE),
        source_sha(THIRD_SOURCE),
    }
    for source, name in ((LOOP_SOURCE, "a"), (OTHER_SOURCE, "b"),
                         (THIRD_SOURCE, "a2")):
        _result, vm = _warm_vm(tmp_path, source=source, name=name)
        loads = vm.events.of_kind(eventkind.STORE_LOAD)
        assert loads and loads[0].payload["result"] == "hit", name


# -- supervisor and fleet ---------------------------------------------------------


def _jobs(count=4):
    from repro.exec import Job

    picked = PROGRAMS[:count]
    return [Job(job_id=p.name, source=p.source, tenant=p.category,
                name=p.name) for p in picked]


def _canonical(results):
    return [
        {"job": r.job_id, "status": r.status, "result": r.result,
         "output": list(r.output)}
        for r in sorted(results, key=lambda r: r.job_id)
    ]


def test_supervisor_warm_start_from_store(tmp_path):
    from repro.exec import Supervisor

    config = _config(tmp_path)
    cold = Supervisor(config=_config(tmp_path))
    cold_results = cold.run(_jobs())

    warm = Supervisor(config=_config(tmp_path))
    sources, fragments = warm.warm_start_from_store()
    assert sources == len({p.source for p in PROGRAMS[:4]})
    assert fragments > 0
    assert warm.vm.monitor.cache.fragment_count > 0
    warm_results = warm.run(_jobs())
    assert _canonical(warm_results) == _canonical(cold_results)


def test_supervisor_without_store_warm_start_noop():
    from repro.exec import Supervisor

    supervisor = Supervisor()
    assert supervisor.warm_start_from_store() == (0, 0)


def test_fleet_respawn_warm_starts_from_store(tmp_path):
    """A respawned worker preloads every stored source and announces it;
    the batch converges byte-identically even when the store feeds it a
    corrupt entry during the warm start."""
    from repro.exec import Fleet

    jobs = _jobs(6)

    def run_fleet(config, fleet_plan):
        fleet = Fleet(workers=2, config=config, fault_plan=fleet_plan,
                      capture_events=True)
        with fleet:
            results = fleet.run(jobs)
        return fleet, _canonical(results)

    _fleet, baseline = run_fleet(_config(tmp_path), None)  # populates store

    config = _config(tmp_path)
    config.fault_plan = FaultPlan.parse(
        [f"{fault_sites.STORE_CORRUPT_ENTRY}:1"])
    fleet, chaotic = run_fleet(
        config, FaultPlan.parse(["fleet.worker_crash:1"]))
    assert chaotic == baseline
    assert fleet.events.counts.get(eventkind.WORKER_RESPAWN, 0) >= 1
    warm_starts = fleet.events.of_kind(eventkind.WORKER_WARM_START)
    assert warm_starts, "respawned worker must warm-start from the store"
    assert warm_starts[0].payload["sources"] >= 1
    assert warm_starts[0].payload["fragments"] >= 0


def test_fleet_initial_spawn_does_not_warm_start(tmp_path):
    from repro.exec import Fleet

    TracingVM(_config(tmp_path)).run(LOOP_SOURCE, name="loop")
    fleet = Fleet(workers=2, config=_config(tmp_path), capture_events=True)
    with fleet:
        fleet.run(_jobs(2))
    assert not fleet.events.of_kind(eventkind.WORKER_WARM_START)


# -- metrics and validation -------------------------------------------------------


def test_store_metrics_families(tmp_path):
    writer = TracingVM(_config(tmp_path, capture_events=True))
    writer.enable_metrics()
    writer.run(LOOP_SOURCE, name="loop")
    warm = TracingVM(_config(tmp_path, capture_events=True))
    warm.enable_metrics()
    warm.run(LOOP_SOURCE, name="loop")

    warm.metrics.collect()
    snapshot = warm.metrics.snapshot()
    by_name = {family["name"]: family
               for section in ("counters", "gauges")
               for family in snapshot[section]}
    loads = by_name["repro_store_loads_total"]
    assert any(series["labels"] == {"result": "hit"} and series["value"] == 1
               for series in loads["series"])
    assert by_name["repro_store_entries"]["series"][0]["value"] >= 1
    assert by_name["repro_store_bytes"]["series"][0]["value"] > 0
    # The failure counter exists (empty here) so dashboards can rate it.
    assert "repro_store_load_failures_total" in by_name

    writer.metrics.collect()
    writer_snapshot = writer.metrics.snapshot()
    writer_by_name = {family["name"]: family
                     for family in writer_snapshot["counters"]}
    saves = writer_by_name["repro_store_saves_total"]
    assert saves["series"] and saves["series"][0]["value"] >= 1


def test_store_load_failure_metric_by_reason(tmp_path):
    _populate(tmp_path)
    path = _entry_path(tmp_path)
    with open(path, "wb") as handle:
        handle.write(b"torn")
    vm = TracingVM(_config(tmp_path, capture_events=True))
    vm.enable_metrics()
    vm.run(LOOP_SOURCE, name="loop")
    snapshot = vm.metrics.snapshot()
    failures = next(f for f in snapshot["counters"]
                    if f["name"] == "repro_store_load_failures_total")
    assert any(series["labels"] == {"reason": "checksum-mismatch"}
               and series["value"] == 1 for series in failures["series"])


def test_validate_store_manifest(tmp_path):
    from repro.obs.validate import (ValidationError, detect_and_validate,
                                    validate_store_manifest)

    _populate(tmp_path)
    manifest_path = os.path.join(str(tmp_path), MANIFEST_NAME)
    manifest = json.load(open(manifest_path))
    assert validate_store_manifest(manifest) == 1
    assert "trace-store manifest" in detect_and_validate(manifest_path)

    broken = json.loads(json.dumps(manifest))
    broken["schema"] = 99
    with pytest.raises(ValidationError):
        validate_store_manifest(broken)
    broken = json.loads(json.dumps(manifest))
    next(iter(broken["entries"].values()))["sha256"] = "zz"
    with pytest.raises(ValidationError):
        validate_store_manifest(broken)


def test_validate_bench_warmstart():
    from repro.obs.validate import ValidationError, validate_bench_warmstart

    doc = {
        "schema": 1, "bench": "warmstart", "backend": "py", "runs": 1,
        "programs": [
            {"name": "a", "cold_seconds": 2.0, "warm_seconds": 0.5,
             "fragments": 3},
            {"name": "b", "cold_seconds": 1.0, "warm_seconds": 0.5,
             "fragments": 1},
        ],
        "cold_seconds": 3.0, "warm_seconds": 1.0, "speedup": 3.0,
    }
    assert validate_bench_warmstart(doc) == 2

    slow = dict(doc, speedup=0.5, warm_seconds=6.0)
    slow["programs"] = [
        {"name": "a", "cold_seconds": 2.0, "warm_seconds": 4.0,
         "fragments": 3},
        {"name": "b", "cold_seconds": 1.0, "warm_seconds": 2.0,
         "fragments": 1},
    ]
    with pytest.raises(ValidationError):
        validate_bench_warmstart(slow)

    inconsistent = dict(doc, speedup=9.0)
    with pytest.raises(ValidationError):
        validate_bench_warmstart(inconsistent)


def test_store_stats_and_warm_sources(tmp_path):
    store_dir = tmp_path / "s"
    vm = TracingVM(_config(store_dir))
    assert vm.trace_store is not None
    assert vm.trace_store.stats() == (0, 0)
    assert vm.trace_store.warm_sources() == []
    vm.run(LOOP_SOURCE, name="loop")
    vm.run(OTHER_SOURCE, name="other")
    entries, nbytes = vm.trace_store.stats()
    assert entries == 2 and nbytes > 0
    warm = vm.trace_store.warm_sources()
    assert [name for _src, name in warm] == ["loop", "other"]
    assert warm[0][0] == LOOP_SOURCE
