"""Unit tests for shapes, objects, arrays (paper Sections 3.1 and 6)."""

from repro.runtime.objects import (
    DICT_MODE_THRESHOLD,
    JSArray,
    JSFunction,
    JSObject,
    Shape,
)
from repro.runtime.values import UNDEFINED, make_number, make_string


class TestShapes:
    def test_same_construction_order_shares_shape(self):
        a, b = JSObject(), JSObject()
        for obj in (a, b):
            obj.set_property("x", make_number(1))
            obj.set_property("y", make_number(2))
        assert a.shape is b.shape
        assert a.shape_id == b.shape_id

    def test_different_order_different_shape(self):
        a, b = JSObject(), JSObject()
        a.set_property("x", make_number(1))
        a.set_property("y", make_number(2))
        b.set_property("y", make_number(2))
        b.set_property("x", make_number(1))
        assert a.shape is not b.shape

    def test_update_does_not_transition(self):
        obj = JSObject()
        obj.set_property("x", make_number(1))
        shape = obj.shape
        obj.set_property("x", make_number(2))
        assert obj.shape is shape

    def test_slot_indexes_are_stable(self):
        obj = JSObject()
        obj.set_property("a", make_number(1))
        obj.set_property("b", make_number(2))
        assert obj.shape.lookup("a") == 0
        assert obj.shape.lookup("b") == 1

    def test_shape_ids_unique(self):
        seen = set()
        shape = Shape()
        for name in "abcdef":
            shape = shape.extend(name)
            assert shape.shape_id not in seen
            seen.add(shape.shape_id)


class TestDictMode:
    def test_delete_converts_to_dict_mode(self):
        obj = JSObject()
        obj.set_property("x", make_number(1))
        obj.set_property("y", make_number(2))
        assert obj.delete_property("x")
        assert obj.in_dict_mode
        assert obj.get_own("x") is None
        assert obj.get_own("y").payload == 2

    def test_delete_missing_returns_false(self):
        obj = JSObject()
        assert not obj.delete_property("nope")

    def test_many_properties_convert(self):
        obj = JSObject()
        for index in range(DICT_MODE_THRESHOLD + 1):
            obj.set_property(f"p{index}", make_number(index))
        assert obj.in_dict_mode
        assert obj.get_own("p0").payload == 0

    def test_dict_mode_shape_id_changes_on_mutation(self):
        obj = JSObject()
        obj.set_property("x", make_number(1))
        obj.convert_to_dict_mode()
        first = obj.shape_id
        obj.set_property("y", make_number(2))
        assert obj.shape_id != first
        assert obj.shape_id < 0  # never collides with real shape ids


class TestPrototypeChain:
    def test_lookup_walks_chain(self):
        proto = JSObject()
        proto.set_property("inherited", make_number(7))
        obj = JSObject(proto=proto)
        holder, value = obj.lookup_chain("inherited")
        assert holder is proto
        assert value.payload == 7

    def test_own_shadows_proto(self):
        proto = JSObject()
        proto.set_property("x", make_number(1))
        obj = JSObject(proto=proto)
        obj.set_property("x", make_number(2))
        holder, value = obj.lookup_chain("x")
        assert holder is obj
        assert value.payload == 2

    def test_chain_depth(self):
        grandparent = JSObject()
        grandparent.set_property("deep", make_number(1))
        parent = JSObject(proto=grandparent)
        obj = JSObject(proto=parent)
        assert obj.chain_depth_of("deep") == 3
        assert obj.lookup_chain("missing") is None


class TestArrays:
    def test_dense_set_get(self):
        arr = JSArray(3)
        arr.set_element(1, make_number(5))
        assert arr.get_element(1).payload == 5
        assert arr.get_element(0) is None  # hole
        assert arr.length == 3

    def test_append_grows(self):
        arr = JSArray()
        for index in range(10):
            arr.set_element(index, make_number(index))
        assert arr.length == 10
        assert len(arr.elements) == 10

    def test_gap_fills_with_holes(self):
        arr = JSArray()
        arr.set_element(5, make_number(1))
        assert arr.length == 6
        assert arr.get_element(2) is None

    def test_huge_index_goes_sparse(self):
        arr = JSArray()
        arr.set_element(0, make_number(1))
        arr.set_element(100000, make_number(2))
        assert arr.length == 100001
        assert len(arr.elements) < 1000
        assert arr.get_element(100000).payload == 2

    def test_negative_index_refused_by_dense_path(self):
        arr = JSArray()
        assert not arr.set_element(-1, make_number(1))

    def test_dense_in_range(self):
        arr = JSArray(4)
        assert arr.dense_in_range(0)
        assert arr.dense_in_range(3)
        assert not arr.dense_in_range(4)
        assert not arr.dense_in_range(-1)


class TestFunctions:
    def test_function_prototype_lazily_created(self):
        from repro.bytecode.compiler import compile_function

        fn = JSFunction("f", compile_function("f", [], []))
        proto = fn.ensure_prototype()
        assert fn.ensure_prototype() is proto

    def test_functions_carry_properties(self):
        from repro.bytecode.compiler import compile_function

        fn = JSFunction("f", compile_function("f", [], []))
        fn.set_property("meta", make_string("hello"))
        assert fn.get_own("meta").payload == "hello"
