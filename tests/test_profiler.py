"""Tests for the phase profiler, per-fragment profiles, and reports.

The three invariants the profiler is built around:

* **time conservation** — the per-phase cycle totals partition the
  ledger's total exactly (the profiler attributes ledger *deltas* at
  phase transitions, so nothing can be dropped or double counted);
* **exit agreement** — the per-guard exit counters are recorded at the
  same site that emits ``side-exit`` events, so their sum equals the
  event-stream fold;
* **zero cost when off** — a VM without a profiler spends exactly the
  same simulated cycles as one with it (the profiler charges nothing
  to the ledger), and the hooks are skipped entirely when
  ``vm.profiler is None``.
"""

import io
import json

from repro import TracingVM, VMConfig
from repro.cli import main as cli_main
from repro.obs.profiler import (
    PHASE_NATIVE,
    PHASES,
    PROFILE_SCHEMA_VERSION,
    PhaseProfiler,
)
from repro.obs.report import profile_json, profile_report
from repro.obs.timeline import render_ascii, render_html

# Figure 1's sieve: nested loops, a branch trace, and tree nesting.
SIEVE = """
var primes = new Array(100);
for (var n = 0; n < 100; n++)
    primes[n] = true;
var count = 0;
for (var i = 2; i < 100; ++i) {
    if (!primes[i])
        continue;
    count++;
    for (var k = i + i; k < 100; k += i)
        primes[k] = false;
}
count;
"""

BRANCHY = (
    "var t = 0;"
    "for (var i = 0; i < 120; i++) { if (i % 4 == 0) t += 3; else t += 1; }"
    "t;"
)


def run_profiled(source, config=None, timeline=False):
    vm = TracingVM(config)
    vm.enable_profiling(timeline=timeline)
    result = vm.run(source)
    return result, vm


class TestTimeConservation:
    def test_phase_cycles_partition_ledger_total(self):
        _r, vm = run_profiled(SIEVE)
        profiler = vm.profiler
        assert sum(profiler.phase_cycles.values()) == vm.stats.ledger.total
        assert profiler.total_cycles == vm.stats.ledger.total

    def test_phase_fractions_sum_to_one(self):
        for source in (SIEVE, BRANCHY, "1 + 2;"):
            _r, vm = run_profiled(source)
            fractions = vm.profiler.phase_fractions()
            assert abs(sum(fractions.values()) - 1.0) < 1e-9, source
            assert set(fractions) == set(PHASES)

    def test_activity_fractions_partition_and_feed_stats(self):
        _r, vm = run_profiled(SIEVE)
        fractions = vm.profiler.activity_fractions()
        assert abs(sum(fractions.values()) - 1.0) < 1e-9
        # stats.time_breakdown() defers to the attached profiler.
        assert vm.stats.time_breakdown() == fractions

    def test_wall_clock_partitions_profiled_window(self):
        _r, vm = run_profiled(SIEVE)
        profiler = vm.profiler
        assert profiler.wall_profiled > 0.0
        # Float accumulation across many transitions: allow tiny slop.
        assert (
            abs(sum(profiler.phase_wall.values()) - profiler.wall_profiled)
            < 1e-4
        )

    def test_sieve_is_native_dominated(self):
        # Paper Figure 12: well-traced programs run mostly on trace.
        _r, vm = run_profiled(SIEVE)
        assert vm.profiler.phase_fractions()[PHASE_NATIVE] > 0.4

    def test_timeline_intervals_partition_cycles(self):
        _r, vm = run_profiled(SIEVE, timeline=True)
        profiler = vm.profiler
        intervals = profiler.intervals
        assert intervals
        assert not profiler.timeline_truncated
        assert intervals[0][1] == 0
        assert intervals[-1][2] == profiler.total_cycles
        for (_p0, _c0, end, _w0, _w1), (_p1, start, _c1, _w2, _w3) in zip(
            intervals, intervals[1:]
        ):
            assert end == start  # contiguous, no gaps or overlaps
        per_phase = {}
        for phase, c0, c1, _w0, _w1 in intervals:
            per_phase[phase] = per_phase.get(phase, 0) + (c1 - c0)
        assert per_phase == {
            k: v for k, v in profiler.phase_cycles.items() if v
        }


class TestExitAgreement:
    def test_guard_exits_equal_event_fold(self):
        for source in (SIEVE, BRANCHY):
            _r, vm = run_profiled(source, VMConfig(capture_events=True))
            profiler = vm.profiler
            assert profiler.total_side_exits == vm.events.counts.get(
                "side-exit", 0
            ), source
            assert (
                profiler.total_side_exits == vm.stats.tracing.side_exits_taken
            ), source

    def test_per_loop_exit_totals_sum_to_event_fold(self):
        _r, vm = run_profiled(SIEVE, VMConfig(capture_events=True))
        total = sum(loop.total_exits for loop in vm.profiler.loops)
        assert total == vm.events.counts.get("side-exit", 0)

    def test_stitched_counts_match_stats(self):
        # Stitched transfers jump guard->branch without returning to the
        # monitor, so they are counted separately from side exits.
        _r, vm = run_profiled(BRANCHY)
        stitched = sum(
            guard.stitched for _loop, guard in vm.profiler.guards_ranked()
        )
        assert stitched == vm.stats.tracing.stitched_transfers

    def test_entries_match_trace_entry_counter(self):
        _r, vm = run_profiled(SIEVE)
        entries = sum(loop.entries for loop in vm.profiler.loops)
        assert entries == vm.stats.tracing.trace_entries

    def test_guard_profiles_carry_source_lines(self):
        _r, vm = run_profiled(SIEVE)
        ranked = vm.profiler.guards_ranked()
        assert ranked
        for loop, guard in ranked:
            assert isinstance(guard.line, int)
            assert guard.kind
            assert loop.code_name


class TestDisabledOverhead:
    def test_profiler_charges_no_simulated_cycles(self):
        plain = TracingVM()
        plain.run(SIEVE)
        _r, profiled = run_profiled(SIEVE)
        # The profiler must not perturb the cost model at all; the
        # ISSUE bound is <=2% but transition accounting costs zero.
        assert profiled.stats.ledger.total == plain.stats.ledger.total
        assert (
            profiled.stats.ledger.total
            <= plain.stats.ledger.total * 1.02
        )

    def test_disabled_vm_has_no_profiler(self):
        vm = TracingVM()
        vm.run(BRANCHY)
        assert vm.profiler is None
        assert vm.stats.profiler is None

    def test_results_identical_with_and_without(self):
        plain = TracingVM()
        expected = plain.run(SIEVE)
        result, _vm = run_profiled(SIEVE)
        assert repr(result) == repr(expected)


class TestProfilesSurviveFlush:
    def test_flushed_fragments_keep_profiles(self):
        config = VMConfig(code_cache_budget=300)
        source = (
            "function f(n) { var s = 0; for (var i = 0; i < n; i++) s += i;"
            " return s; }"
            "function g(n) { var s = 0; for (var i = 0; i < n; i++) s += 2;"
            " return s; }"
            "var t = 0;"
            "for (var r = 0; r < 10; r++) { t = t + f(30) + g(30); }"
            "t;"
        )
        _r, vm = run_profiled(source, config)
        assert vm.stats.tracing.cache_flushes >= 1
        retired = [loop for loop in vm.profiler.loops if loop.retired]
        assert retired  # flushed trees' profiles are retained, marked


class TestReports:
    def test_profile_report_sections(self):
        _r, vm = run_profiled(SIEVE)
        text = profile_report(vm)
        assert "phase breakdown" in text
        assert "hot loops" in text
        assert "top deopt sites" in text
        assert "100.0%" in text  # the fractions total line

    def test_report_without_profiler(self):
        vm = TracingVM()
        vm.run("1;")
        assert profile_report(vm) == "(profiling was not enabled)"

    def test_deopt_table_excludes_normal_loop_exits(self):
        import re

        _r, vm = run_profiled(SIEVE)
        from repro.obs.report import deopt_sites_lines

        for line in deopt_sites_lines(vm.profiler):
            if re.match(r"\s*\d+ ", line):  # ranked data rows only
                kind = line.split()[3]
                assert kind not in ("loop", "preempt"), line

    def test_profile_json_schema(self):
        _r, vm = run_profiled(SIEVE, timeline=True)
        doc = json.loads(profile_json(vm, program="sieve"))
        assert doc["schema_version"] == PROFILE_SCHEMA_VERSION
        assert doc["program"] == "sieve"
        assert doc["total_cycles"] == vm.stats.ledger.total
        assert {p["phase"] for p in doc["phases"]} == set(PHASES)
        assert abs(sum(p["fraction"] for p in doc["phases"]) - 1.0) < 1e-9
        assert doc["loops"]
        for loop in doc["loops"]:
            assert {"code", "header_pc", "line", "entries", "iterations",
                    "cycles_on_trace", "guards"} <= set(loop)
        # Loops are exported hottest-first.
        cycles = [loop["cycles_on_trace"] for loop in doc["loops"]]
        assert cycles == sorted(cycles, reverse=True)
        intervals = doc["timeline"]["intervals"]
        assert intervals
        assert all(len(interval) == 5 for interval in intervals)
        assert intervals[-1][2] == doc["total_cycles"]

    def test_timeline_renders(self):
        _r, vm = run_profiled(SIEVE, timeline=True)
        ascii_art = render_ascii(vm.profiler)
        assert "legend:" in ascii_art
        html = render_html(vm.profiler, title="sieve")
        assert html.startswith("<!DOCTYPE html>")
        assert "</html>" in html
        assert "seg" in html


class TestCLIProfileFlags:
    PROGRAM = "var s = 0; for (var i = 0; i < 80; i++) s += i; s;"

    def test_profile_flag_prints_report(self):
        out = io.StringIO()
        status = cli_main(["-e", self.PROGRAM, "--no-result", "--profile"],
                          out=out)
        assert status == 0
        text = out.getvalue()
        assert "phase breakdown" in text
        assert "hot loops" in text

    def test_profile_json_writes_file(self, tmp_path):
        target = tmp_path / "profile.json"
        status = cli_main(
            ["-e", self.PROGRAM, "--no-result", "--profile-json", str(target)],
            out=io.StringIO(),
        )
        assert status == 0
        doc = json.loads(target.read_text())
        assert doc["schema_version"] == PROFILE_SCHEMA_VERSION
        assert doc["total_cycles"] > 0

    def test_timeline_writes_html(self, tmp_path):
        target = tmp_path / "timeline.html"
        status = cli_main(
            ["-e", self.PROGRAM, "--no-result", "--timeline", str(target)],
            out=io.StringIO(),
        )
        assert status == 0
        assert target.read_text().startswith("<!DOCTYPE html>")

    def test_timeline_ascii_for_txt(self, tmp_path):
        target = tmp_path / "timeline.txt"
        status = cli_main(
            ["-e", self.PROGRAM, "--no-result", "--timeline", str(target)],
            out=io.StringIO(),
        )
        assert status == 0
        assert "legend:" in target.read_text()

    def test_profile_sieve_example_file(self):
        out = io.StringIO()
        status = cli_main(["examples/sieve.js", "--profile"], out=out)
        assert status == 0
        assert "top deopt sites" in out.getvalue()


class TestProfilerUnit:
    def test_set_recording_flips_innermost_phase(self):
        vm = TracingVM()
        profiler = PhaseProfiler(vm)
        profiler.start()
        profiler.set_recording(True)
        assert profiler._stack[-1] == "record"
        profiler.set_recording(False)
        assert profiler._stack[-1] == "interpret"
        profiler.finish()

    def test_finish_unwinds_nested_stack(self):
        vm = TracingVM()
        profiler = PhaseProfiler(vm)
        profiler.start()
        profiler.enter("monitor")
        profiler.enter("compile")
        profiler.finish()
        assert not profiler._active
        assert sum(profiler.phase_cycles.values()) == vm.stats.ledger.total
