"""Tests for the production-telemetry layer: metrics, spans, validation.

The contract under test (ISSUE 7, mirroring the profiler's):

* **zero cost when off** — a VM without metrics/spans spends exactly
  the same simulated cycles, produces the same results, the same event
  counts, and the same stats as one with them;
* **conservation** — the sampled per-activity cycle gauges sum to the
  ledger total, which equals the profiler's phase total (one source of
  truth, three views);
* **fold agreement** — lifecycle counters derived from the event
  stream equal the stats fold's counters;
* **schema stability** — every exported artifact passes
  :mod:`repro.obs.validate` against its declared ``schema_version``.
"""

import io
import json

import pytest

from repro import TracingVM, VMConfig
from repro.cli import main as cli_main
from repro.exec import Job, ResourceLimits, Supervisor
from repro.obs.metrics import METRICS_SCHEMA_VERSION, MetricsRegistry
from repro.obs.spans import SPANS_SCHEMA_VERSION, TRACK_PHASES
from repro.obs.validate import ValidationError, detect_and_validate

SIEVE = """
var primes = new Array(100);
for (var n = 0; n < 100; n++)
    primes[n] = true;
var count = 0;
for (var i = 2; i < 100; ++i) {
    if (!primes[i])
        continue;
    count++;
    for (var k = i + i; k < 100; k += i)
        primes[k] = false;
}
count;
"""

BRANCHY = (
    "var t = 0;"
    "for (var i = 0; i < 120; i++) { if (i % 4 == 0) t += 3; else t += 1; }"
    "t;"
)


def run_with_telemetry(source, config=None):
    vm = TracingVM(config)
    vm.enable_metrics()
    vm.enable_span_tracing()
    result = vm.run(source)
    return result, vm


class TestDisabledContract:
    def test_disabled_vm_has_no_telemetry(self):
        vm = TracingVM()
        vm.run(BRANCHY)
        assert vm.metrics is None
        assert vm.span_recorder is None
        assert vm.stats.metrics is None
        assert vm.monitor.cache.metrics is None

    def test_telemetry_charges_no_simulated_cycles(self):
        plain = TracingVM()
        plain.run(SIEVE)
        _r, instrumented = run_with_telemetry(SIEVE)
        assert instrumented.stats.ledger.total == plain.stats.ledger.total

    def test_results_and_stats_identical(self):
        plain = TracingVM()
        expected = plain.run(SIEVE)
        result, vm = run_with_telemetry(SIEVE)
        assert repr(result) == repr(expected)
        assert vm.events.counts == plain.events.counts
        assert vm.stats.tracing == plain.stats.tracing
        assert vm.stats.profile == plain.stats.profile
        assert vm.stats.ledger.by_activity == plain.stats.ledger.by_activity

    def test_stats_block_byte_identical_with_metrics(self, tmp_path):
        """--metrics-json/--metrics-prom must not perturb --stats output.

        (--trace-export is exempt: spans imply the phase profiler, and a
        profiler's attachment switches the cycle-breakdown line to its
        transition-accounted fractions — the documented --profile
        behavior, which predates telemetry.)
        """
        plain_out = io.StringIO()
        assert cli_main(["-e", SIEVE, "--stats"], out=plain_out) == 0
        metrics_out = io.StringIO()
        code = cli_main(
            [
                "-e", SIEVE, "--stats",
                "--metrics-json", str(tmp_path / "m.json"),
                "--metrics-prom", str(tmp_path / "m.prom"),
            ],
            out=metrics_out,
        )
        assert code == 0
        assert metrics_out.getvalue() == plain_out.getvalue()

    def test_batch_table_byte_identical(self, tmp_path):
        """The batch job table must not change when telemetry is on."""
        argv = ["batch", "--suite", "--deadline-cycles", "400000"]
        plain_out = io.StringIO()
        assert cli_main(argv, out=plain_out) == 0
        telemetry_out = io.StringIO()
        flags = [
            "--metrics-json", str(tmp_path / "m.json"),
            "--trace-export", str(tmp_path / "t.json"),
        ]
        assert cli_main(argv + flags, out=telemetry_out) == 0
        assert telemetry_out.getvalue() == plain_out.getvalue()


class TestConservation:
    def test_cycle_gauges_equal_ledger_equal_profiler(self):
        from repro.suite.programs import PROGRAMS

        program = next(p for p in PROGRAMS if p.name == "bitops-bitwise-and")
        _r, vm = run_with_telemetry(program.source)
        vm.metrics.collect()
        gauge_sum = sum(vm.metrics.simulated_cycles.values.values())
        assert gauge_sum == vm.stats.ledger.total
        assert gauge_sum == vm.profiler.total_cycles

    def test_fold_agrees_with_stats_fold(self):
        _r, vm = run_with_telemetry(SIEVE)
        metrics, tracing = vm.metrics, vm.stats.tracing
        assert metrics.side_exits.total == tracing.side_exits_taken
        assert metrics.recordings.total == tracing.recordings_started
        assert metrics.compiles.total == tracing.traces_completed
        assert metrics.fragments_linked.total == tracing.fragments_linked
        assert metrics.record_aborts.total == tracing.traces_aborted
        assert metrics.compiles.value(fragment="root") == tracing.trees_formed
        assert metrics.compiles.value(fragment="branch") == tracing.branch_traces

    def test_trace_lookups_and_cache_gauges(self):
        _r, vm = run_with_telemetry(SIEVE)
        assert vm.metrics.trace_lookups.value(result="hit") >= 1
        assert vm.metrics.trace_lookups.value(result="miss") >= 1
        vm.metrics.collect()
        cache = vm.monitor.cache
        assert vm.metrics.cache_code_size.value() == cache.code_size_used
        assert vm.metrics.cache_trees.value() == cache.tree_count
        assert vm.metrics.cache_fragments.value() == cache.fragment_count

    def test_pycompile_histogram_counts_fragments(self):
        _r, vm = run_with_telemetry(SIEVE)
        fragments = vm.metrics.pycompile_fragments.total
        assert fragments >= 1
        series = vm.metrics.pycompile_wall.series()
        assert len(series) == 1
        assert series[0]["count"] == fragments
        assert series[0]["buckets"][-1]["le"] == "+Inf"
        assert series[0]["buckets"][-1]["count"] == fragments


class TestRegistry:
    def test_counters_reject_negative_and_wrong_labels(self):
        registry = MetricsRegistry()
        with pytest.raises(ValueError):
            registry.side_exits.inc(-1, kind="x")
        with pytest.raises(ValueError):
            registry.side_exits.inc(1)  # missing the kind label
        with pytest.raises(ValueError):
            registry.unstable_links.inc(1, bogus="y")

    def test_snapshot_schema_and_prometheus(self):
        registry = MetricsRegistry()
        registry.side_exits.inc(3, kind="type")
        registry.pycompile_wall.observe(0.002)
        snapshot = registry.snapshot(program="unit")
        assert snapshot["schema_version"] == METRICS_SCHEMA_VERSION
        assert snapshot["program"] == "unit"
        names = {f["name"] for section in ("counters", "gauges", "histograms")
                 for f in snapshot[section]}
        assert "repro_side_exits_total" in names
        assert "repro_pycompile_wall_seconds" in names
        text = registry.to_prometheus()
        assert '# TYPE repro_side_exits_total counter' in text
        assert 'repro_side_exits_total{kind="type"} 3' in text
        assert '# TYPE repro_pycompile_wall_seconds histogram' in text
        assert 'repro_pycompile_wall_seconds_bucket' in text
        assert 'le="+Inf"' in text
        assert 'repro_pycompile_wall_seconds_count 1' in text

    def test_flat_counters_delta(self):
        registry = MetricsRegistry()
        before = registry.flat_counters()
        registry.side_exits.inc(2, kind="loop")
        registry.unstable_links.inc()
        delta = registry.delta(before, registry.flat_counters())
        assert delta == {
            'repro_side_exits_total{kind="loop"}': 2,
            "repro_unstable_links_total": 1,
        }

    def test_reregistration_must_match(self):
        registry = MetricsRegistry()
        again = registry.counter(
            "repro_unstable_links_total",
            "Type-unstable exits chained directly into a complementary peer.",
        )
        assert again is registry.unstable_links
        with pytest.raises(ValueError):
            registry.gauge("repro_unstable_links_total", "now a gauge")


class TestSpans:
    def test_chrome_trace_structure(self):
        _r, vm = run_with_telemetry(SIEVE)
        doc = vm.span_recorder.to_chrome_trace(
            profiler=vm.profiler, program="sieve"
        )
        json.dumps(doc)  # must serialize
        assert doc["schema_version"] == SPANS_SCHEMA_VERSION
        events = doc["traceEvents"]
        thread_names = {
            e["args"]["name"] for e in events
            if e["ph"] == "M" and e["name"] == "thread_name"
        }
        assert {"jobs", "vm-phases", "events"} <= thread_names
        phase_spans = {
            e["name"] for e in events
            if e["ph"] == "X" and e["tid"] == TRACK_PHASES
        }
        assert {"interpret", "record", "compile", "native"} <= phase_spans
        deopts = [e for e in events if e["ph"] == "i" and e["name"] == "deopt"]
        assert len(deopts) == vm.stats.tracing.side_exits_taken

    def test_span_timestamps_are_cycles(self):
        vm = TracingVM()
        recorder = vm.enable_span_tracing()
        span = recorder.open("outer", cat="test")
        vm.run(BRANCHY)
        recorder.close(span)
        doc = recorder.to_chrome_trace()
        outer = next(e for e in doc["traceEvents"] if e["name"] == "outer")
        assert outer["ts"] == 0
        assert outer["dur"] == vm.stats.ledger.total


class TestSupervisorTelemetry:
    def _jobs(self):
        hot = "var s = 0; for (var i = 0; i < 400; i++) s += i; s;"
        return [
            Job(job_id="a-1", source=hot, tenant="alpha"),
            Job(job_id="b-1", source=hot, tenant="beta"),
            Job(job_id="a-2", source="var x = 1; x;", tenant="alpha"),
        ]

    def test_tenant_summary_aggregates_billing(self):
        supervisor = Supervisor(capture_metrics=True)
        results = supervisor.run(self._jobs())
        tenants = supervisor.tenant_summary()
        assert sorted(tenants) == ["alpha", "beta"]
        assert tenants["alpha"].jobs == 2
        assert tenants["beta"].jobs == 1
        assert tenants["alpha"].cycles == sum(
            r.usage.cycles for r in results if r.tenant == "alpha"
        )
        metrics = supervisor.vm.metrics
        assert metrics.jobs.value(tenant="alpha", status="ok") == 2
        assert metrics.billed_cycles.value(tenant="alpha") == (
            tenants["alpha"].cycles
        )
        assert metrics.meter_polls.total > 0

    def test_job_results_carry_metrics_delta(self):
        supervisor = Supervisor(capture_metrics=True)
        results = supervisor.run(self._jobs())
        hot = next(r for r in results if r.job_id == "a-1")
        assert hot.metrics is not None
        assert any("repro_" in name for name in hot.metrics)
        # The hot loop compiled at least one fragment during its run.
        assert any(
            name.startswith("repro_compiles_total") for name in hot.metrics
        )
        plain = Supervisor().run(self._jobs())
        assert all(r.metrics is None for r in plain)

    def test_batch_spans_cover_queue_and_jobs(self):
        supervisor = Supervisor(capture_spans=True)
        results = supervisor.run(self._jobs())
        doc = supervisor.vm.span_recorder.to_chrome_trace(
            profiler=supervisor.vm.profiler
        )
        spans = [e for e in doc["traceEvents"] if e["ph"] == "X"]
        waits = [s for s in spans if s["cat"] == "queue"]
        jobs = [s for s in spans if s["cat"] == "job"]
        assert len(waits) == len(results) == len(jobs)
        assert all("status" in s["args"] for s in jobs)
        # Later jobs waited behind earlier ones on the shared VM.
        assert max(w["dur"] for w in waits) > 0


class TestArtifactValidation:
    def test_cli_artifacts_validate(self, tmp_path):
        paths = {
            "events": tmp_path / "events.jsonl",
            "profile": tmp_path / "profile.json",
            "metrics": tmp_path / "metrics.json",
            "prom": tmp_path / "metrics.prom",
            "trace": tmp_path / "trace.json",
        }
        out = io.StringIO()
        code = cli_main(
            [
                "-e", SIEVE,
                "--dump-events", str(paths["events"]),
                "--profile-json", str(paths["profile"]),
                "--metrics-json", str(paths["metrics"]),
                "--metrics-prom", str(paths["prom"]),
                "--trace-export", str(paths["trace"]),
            ],
            out=out,
        )
        assert code == 0
        for path in paths.values():
            detect_and_validate(str(path))  # raises on any drift

    def test_validator_rejects_wrong_version(self, tmp_path):
        bad = tmp_path / "metrics.json"
        bad.write_text(json.dumps(
            {"schema_version": 999, "counters": [], "gauges": [],
             "histograms": []}
        ))
        with pytest.raises(ValidationError):
            detect_and_validate(str(bad))

    def test_validator_rejects_non_cumulative_histogram(self, tmp_path):
        bad = tmp_path / "metrics.json"
        bad.write_text(json.dumps({
            "schema_version": METRICS_SCHEMA_VERSION,
            "counters": [], "gauges": [],
            "histograms": [{
                "name": "repro_x", "help": "h", "label_names": [],
                "series": [{
                    "labels": {},
                    "buckets": [
                        {"le": 1, "count": 5},
                        {"le": "+Inf", "count": 3},
                    ],
                    "sum": 1.0, "count": 3,
                }],
            }],
        }))
        with pytest.raises(ValidationError):
            detect_and_validate(str(bad))

    def test_batch_telemetry_artifacts_validate(self, tmp_path):
        metrics_path = tmp_path / "batch-metrics.json"
        trace_path = tmp_path / "batch-trace.json"
        out = io.StringIO()
        code = cli_main(
            [
                "batch", "--suite", "--deadline-cycles", "400000",
                "--metrics-json", str(metrics_path),
                "--trace-export", str(trace_path),
            ],
            out=out,
        )
        assert code == 0
        detect_and_validate(str(metrics_path))
        detect_and_validate(str(trace_path))
        doc = json.loads(trace_path.read_text())
        names = {e["name"] for e in doc["traceEvents"] if e["ph"] == "X"}
        assert {"interpret", "record", "compile", "native"} <= names
        assert any(n.startswith("queue-wait") for n in names)
        # The per-tenant footer rides on the job table.
        assert "tenant " in out.getvalue()
