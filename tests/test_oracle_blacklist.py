"""Unit tests for the oracle and the blacklist (paper Sections 3.2/3.3/4.2)."""

from repro.core.blacklist import Blacklist
from repro.core.oracle import Oracle


class FakeCode:
    pass


class TestOracle:
    def test_mark_and_query(self):
        oracle = Oracle()
        key = oracle.global_key("x")
        assert not oracle.should_demote(key)
        oracle.mark_double(key)
        assert oracle.should_demote(key)

    def test_local_keys_distinct_per_code(self):
        oracle = Oracle()
        code_a, code_b = FakeCode(), FakeCode()
        oracle.mark_double(oracle.local_key(code_a, 0))
        assert oracle.should_demote(oracle.local_key(code_a, 0))
        assert not oracle.should_demote(oracle.local_key(code_b, 0))
        assert not oracle.should_demote(oracle.local_key(code_a, 1))

    def test_marks_counted_once(self):
        oracle = Oracle()
        key = oracle.global_key("x")
        oracle.mark_double(key)
        oracle.mark_double(key)
        assert oracle.marks == 1

    def test_disabled_oracle_never_demotes(self):
        oracle = Oracle(enabled=False)
        key = oracle.global_key("x")
        oracle.mark_double(key)
        assert not oracle.should_demote(key)

    def test_clear(self):
        oracle = Oracle()
        key = oracle.global_key("x")
        oracle.mark_double(key)
        oracle.clear()
        assert not oracle.should_demote(key)


class TestBlacklist:
    def test_allows_until_failures(self):
        blacklist = Blacklist(backoff=4, max_failures=2)
        code = FakeCode()
        assert blacklist.allows_recording(code, 10)
        assert not blacklist.note_failure(code, 10)  # failure 1: backoff
        for _ in range(4):
            assert not blacklist.allows_recording(code, 10)
        assert blacklist.allows_recording(code, 10)  # backoff expired
        assert blacklist.note_failure(code, 10)  # failure 2: blacklisted
        assert not blacklist.allows_recording(code, 10)

    def test_backoff_counts_down_per_query(self):
        blacklist = Blacklist(backoff=2, max_failures=5)
        code = FakeCode()
        blacklist.note_failure(code, 0)
        assert not blacklist.allows_recording(code, 0)
        assert not blacklist.allows_recording(code, 0)
        assert blacklist.allows_recording(code, 0)

    def test_headers_independent(self):
        blacklist = Blacklist(backoff=4, max_failures=1)
        code = FakeCode()
        blacklist.note_failure(code, 10)
        assert not blacklist.allows_recording(code, 10)
        assert blacklist.allows_recording(code, 20)

    def test_disabled_blacklist_always_allows(self):
        blacklist = Blacklist(enabled=False)
        code = FakeCode()
        for _ in range(10):
            blacklist.note_failure(code, 0)
        assert blacklist.allows_recording(code, 0)

    def test_nesting_forgiveness(self):
        # Section 4.2: outer aborts on a not-ready inner tree are undone
        # when the inner tree completes a trace.
        blacklist = Blacklist(backoff=32, max_failures=2)
        outer, inner = FakeCode(), FakeCode()
        inner_key = Blacklist.key(inner, 5)
        blacklist.note_failure(outer, 1, inner_key=inner_key)
        assert not blacklist.allows_recording(outer, 1)  # backed off
        forgiven = blacklist.note_inner_success(inner, 5)
        assert forgiven == [Blacklist.key(outer, 1)]
        record = blacklist.record_for(outer, 1)
        assert record.failures == 0
        assert record.backoff_remaining == 0
        assert blacklist.allows_recording(outer, 1)

    def test_forgiveness_does_not_resurrect_blacklisted(self):
        blacklist = Blacklist(backoff=1, max_failures=1)
        outer, inner = FakeCode(), FakeCode()
        inner_key = Blacklist.key(inner, 5)
        blacklist.note_failure(outer, 1, inner_key=inner_key)  # blacklists
        assert blacklist.record_for(outer, 1).blacklisted
        blacklist.note_inner_success(inner, 5)
        assert not blacklist.allows_recording(outer, 1)

    def test_forgiveness_fires_once(self):
        blacklist = Blacklist(backoff=32, max_failures=3)
        outer, inner = FakeCode(), FakeCode()
        inner_key = Blacklist.key(inner, 5)
        blacklist.note_failure(outer, 1, inner_key=inner_key)
        assert blacklist.note_inner_success(inner, 5)
        assert blacklist.note_inner_success(inner, 5) == []
