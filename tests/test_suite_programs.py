"""Cross-engine agreement on the full benchmark suite.

Every SunSpider-like program must produce identical results on all four
engines; the tracing VM must additionally show the Figure 10/11 shape
(traceable programs mostly native, untraceable ones not traced).
"""

import pytest

from repro.suite.programs import PROGRAMS
from repro.suite.runner import run_program
from tests.helpers import ALL_ENGINES

FAST_PROGRAMS = [p for p in PROGRAMS if p.name not in ("access-binary-trees",)]


@pytest.mark.parametrize("program", PROGRAMS, ids=lambda p: p.name)
def test_tracing_matches_baseline(program):
    baseline = run_program(program, "baseline")
    tracing = run_program(program, "tracing")
    assert tracing.result_repr == baseline.result_repr


@pytest.mark.parametrize("program", FAST_PROGRAMS, ids=lambda p: p.name)
def test_methodjit_and_threaded_match_baseline(program):
    baseline = run_program(program, "baseline")
    for engine in ("threaded", "methodjit"):
        result = run_program(program, engine)
        assert result.result_repr == baseline.result_repr, engine


@pytest.mark.parametrize(
    "program",
    [p for p in PROGRAMS if not p.expected_traceable],
    ids=lambda p: p.name,
)
def test_untraceable_programs_stay_in_interpreter(program):
    result = run_program(program, "tracing")
    assert result.stats.profile.fraction_native() < 0.3


def test_most_traceable_programs_run_mostly_native():
    mostly_native = 0
    traceable = [p for p in PROGRAMS if p.expected_traceable]
    for program in traceable:
        result = run_program(program, "tracing")
        if result.stats.profile.fraction_native() > 0.75:
            mostly_native += 1
    # Figure 11: "In most of the tests, almost all the bytecodes are
    # executed by compiled traces."
    assert mostly_native >= len(traceable) - 2


def test_threaded_interpreter_uniformly_modest():
    for program in FAST_PROGRAMS[:6]:
        base = run_program(program, "baseline")
        threaded = run_program(program, "threaded")
        speedup = base.cycles / threaded.cycles
        assert 1.0 <= speedup <= 3.0, program.name
