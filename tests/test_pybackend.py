"""Unit tests for the generated-Python trace backend (repro.jit.pycompile).

The differential suite (test_backend_differential.py) proves whole-run
equivalence; these tests pin the backend's lifecycle contract: callables
are cached per fragment, dropped on retirement and cache flushes,
emission faults fall back to the step interpreter without advancing the
firewall breaker, and the emitted source actually compiles.
"""

from __future__ import annotations

import pytest

from repro.core import events as eventkind
from repro.core.cache import FragmentState
from repro.hardening import FaultPlan
from repro.hardening.faults import InjectedFault
from repro.jit.pycompile import PyEmitError, emit_fragment
from repro.vm import TracingVM, VMConfig

HOT_LOOP = "var s = 0; for (var i = 0; i < 500; i++) s += i; s;"


def _py_vm(**overrides) -> TracingVM:
    config = VMConfig()
    config.native_backend = "py"
    for name, value in overrides.items():
        setattr(config, name, value)
    return TracingVM(config)


def _compiled_fragments(vm):
    fragments = []
    for tree in vm.monitor.cache.all_trees():
        fragments.append(tree.fragment)
        fragments.extend(tree.branches)
    return [f for f in fragments if f.native]


# -- compilation and caching -------------------------------------------------


def test_hot_loop_compiles_and_caches_callable():
    vm = _py_vm()
    result = vm.run(HOT_LOOP)
    assert result.payload == sum(range(500))
    fragments = _compiled_fragments(vm)
    assert fragments, "expected at least one compiled fragment"
    trunk = fragments[0]
    assert trunk.py_func is not None
    assert trunk.py_consts is not None
    assert not trunk.py_failed


def test_callable_is_compiled_once_and_reused():
    vm = _py_vm()
    vm.run(HOT_LOOP)
    trunk = _compiled_fragments(vm)[0]
    cached = trunk.py_func
    # Re-entering the loop must reuse the cached function object.
    vm.run(HOT_LOOP)
    assert trunk.py_func is cached


def test_emitted_source_is_python():
    vm = _py_vm()
    vm.run(HOT_LOOP)
    trunk = _compiled_fragments(vm)[0]
    source, consts = emit_fragment(trunk)
    assert source.startswith("def _fragment_fn(machine, executed, cycles):")
    compile(source, "<test>", "exec")  # must be valid Python
    assert isinstance(consts, tuple)


def test_emit_empty_fragment_raises():
    class Empty:
        native = []
        anchor_exit = None

    with pytest.raises(PyEmitError):
        emit_fragment(Empty())


# -- invalidation ------------------------------------------------------------


def test_retirement_drops_compiled_callable():
    vm = _py_vm()
    vm.run(HOT_LOOP)
    trunk = _compiled_fragments(vm)[0]
    assert trunk.py_func is not None
    trunk_tree = vm.monitor.cache.all_trees()[0]
    trunk_tree.retire()
    assert trunk.state is FragmentState.RETIRED
    assert trunk.py_func is None
    assert trunk.py_consts is None


def test_cache_flush_under_budget_pressure_drops_callables():
    """Regression: a code_cache_budget flush must drop every compiled
    callable, and the program must still run correctly afterwards by
    re-tracing and re-compiling."""
    config = VMConfig()
    config.native_backend = "py"
    config.code_cache_budget = 1  # any compilation overflows instantly
    vm = TracingVM(config)
    vm.events.capture = True

    source = """
var a = 0;
for (var i = 0; i < 300; i++) a += i;
var b = 0;
for (var j = 0; j < 300; j++) b += 2;
a + b;
"""
    # The flush clears the peer table, so keep our own references to
    # every tree that ever lived in the cache.
    seen = {}
    vm.events.subscribe(
        lambda _event: seen.update(
            (id(t), t) for t in vm.monitor.cache.all_trees()
        )
    )
    result = vm.run(source)
    assert result.payload == sum(range(300)) + 600
    assert vm.monitor.cache.flush_count >= 1
    # Eviction dropped the callables (the eviction-site assertion in
    # TraceCache._check_callables_dropped did not fire), and nothing
    # retired still holds one.
    retired = [
        fragment
        for tree in seen.values()
        for fragment in [tree.fragment] + tree.branches
        if fragment.state is FragmentState.RETIRED
    ]
    assert retired, "budget pressure must have retired at least one fragment"
    for fragment in retired:
        assert fragment.py_func is None
        assert fragment.py_consts is None

    # Re-execution after the flush recompiles from scratch.
    vm2 = _py_vm(code_cache_budget=1)
    assert vm2.run(source).payload == result.payload


def test_eviction_assertion_trips_on_retained_callable():
    from repro.core.cache import TraceCache

    vm = _py_vm()
    vm.run(HOT_LOOP)
    tree = vm.monitor.cache.all_trees()[0]
    fragment = tree.fragment
    tree.retire()
    fragment.py_func = lambda machine, executed, cycles: None  # simulate a leak
    with pytest.raises(AssertionError):
        TraceCache._check_callables_dropped(tree)


# -- fault containment -------------------------------------------------------


def test_emission_fault_is_contained_and_does_not_strike_breaker():
    config = VMConfig()
    config.native_backend = "py"
    config.fault_plan = FaultPlan.parse(["pycompile.emit"])  # first hit only
    vm = TracingVM(config)
    vm.events.capture = True
    result = vm.run(HOT_LOOP)
    assert result.payload == sum(range(500))

    failures = vm.events.of_kind(eventkind.JIT_INTERNAL_FAILURE)
    assert len(failures) == 1
    assert failures[0].payload["boundary"] == "pycompile"
    assert vm.firewall.failures == 0, "fallback must not advance the breaker"
    assert not vm.in_safe_mode
    # The failed fragment is latched so it is not re-attempted.
    assert any(f.py_failed for f in _compiled_fragments(vm))


def test_emission_fault_escapes_with_firewall_disabled():
    """Negative control: --no-jit-firewall means injected emission faults
    must escape (proving containment is the firewall's doing)."""
    config = VMConfig()
    config.native_backend = "py"
    config.enable_jit_firewall = False
    config.fault_plan = FaultPlan.parse(["pycompile.emit"])
    vm = TracingVM(config)
    with pytest.raises(InjectedFault):
        vm.run(HOT_LOOP)


# -- budget equivalence ------------------------------------------------------


def test_native_insn_budget_deopt_matches_step_backend():
    results = {}
    for backend in ("py", "step"):
        config = VMConfig()
        config.native_backend = backend
        config.native_insn_budget = 50  # overruns at the first back-edge
        vm = TracingVM(config)
        vm.events.capture = True
        result = vm.run(HOT_LOOP)
        results[backend] = (
            repr(result),
            vm.stats.total_cycles,
            dict(vm.events.counts),
        )
    assert results["py"] == results["step"]


# -- micro-differentials -----------------------------------------------------

MICRO_PROGRAMS = {
    "nan-compare": """
var nan = 0 / 0;
var hits = 0;
for (var i = 0; i < 200; i++) {
    if (nan < i) hits += 1;
    if (nan == nan) hits += 100;
}
hits;
""",
    "int-overflow": """
var x = 2147483600;
for (var i = 0; i < 200; i++) x = x + 7;
x;
""",
    "string-concat": """
var s = "";
for (var i = 0; i < 150; i++) s = s + "ab";
s.length;
""",
    "double-mix": """
var total = 0.5;
for (var i = 0; i < 250; i++) total = total * 1.01 + i;
total;
""",
}


@pytest.mark.parametrize("name", sorted(MICRO_PROGRAMS))
def test_micro_program_identical_across_backends(name):
    source = MICRO_PROGRAMS[name]
    outcomes = {}
    for backend in ("py", "step"):
        config = VMConfig()
        config.native_backend = backend
        vm = TracingVM(config)
        result = vm.run(source)
        outcomes[backend] = (repr(result), vm.stats.total_cycles)
    assert outcomes["py"] == outcomes["step"], name
