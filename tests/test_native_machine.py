"""Unit tests for the simulated native machine (ISA semantics)."""

import math

import pytest

from repro import BaselineVM
from repro.core.exits import LOOP, OVERFLOW, SideExit
from repro.core.typemap import TraceType
from repro.errors import NativeMachineError
from repro.jit.native import (
    ActivationRecord,
    CallSpec,
    GlobalArea,
    NativeInsn,
    NativeMachine,
    N_INT_REGS,
)
from repro.runtime.values import TAG_INT, UNDEFINED, make_number


class _Tree:
    header_pc = 0
    iterations = 0
    fragment = None
    entry_typemap = ()  # no state to snapshot at commit points


class _Fragment:
    kind = "root"
    bytecount = 1

    def __init__(self, native):
        self.native = native


def run(insns, slots=(), vm=None):
    vm = vm or BaselineVM()
    ar = ActivationRecord(max(len(slots), 8) + 8, GlobalArea())
    ar.slots[: len(slots)] = list(slots)
    machine = NativeMachine(vm, _Tree(), ar)
    event = machine.run(_Fragment(list(insns)))
    return machine, ar, event


def exit_insn(kind=LOOP):
    return NativeInsn("x", exit=SideExit(kind=kind, pc=0, frames=(), stack_depth0=0, livemap=()))


class TestIntOps:
    def test_alu(self):
        machine, ar, _ = run(
            [
                NativeInsn("movi", dst=0, imm=6),
                NativeInsn("movi", dst=1, imm=7),
                NativeInsn("muli", dst=2, a=0, b=1),
                NativeInsn("star", a=2, imm=0),
                exit_insn(),
            ]
        )
        assert ar.slots[0] == 42

    def test_overflow_flag_and_guard(self):
        exit = SideExit(kind=OVERFLOW, pc=3, frames=(), stack_depth0=0, livemap=())
        machine, _ar, event = run(
            [
                NativeInsn("movi", dst=0, imm=2**31 - 1),
                NativeInsn("movi", dst=1, imm=1),
                NativeInsn("addi", dst=2, a=0, b=1),
                NativeInsn("govf", exit=exit),
                exit_insn(),
            ]
        )
        assert event.exit is exit

    def test_int32_wrapping_ops(self):
        machine, ar, _ = run(
            [
                NativeInsn("movi", dst=0, imm=1),
                NativeInsn("movi", dst=1, imm=31),
                NativeInsn("shli", dst=2, a=0, b=1),
                NativeInsn("star", a=2, imm=0),
                NativeInsn("movi", dst=3, imm=-1),
                NativeInsn("movi", dst=4, imm=28),
                NativeInsn("ushri", dst=5, a=3, b=4),
                NativeInsn("star", a=5, imm=1),
                NativeInsn("noti", dst=6, a=0),
                NativeInsn("star", a=6, imm=2),
                exit_insn(),
            ]
        )
        assert ar.slots[0] == -(2**31)
        assert ar.slots[1] == 15
        assert ar.slots[2] == -2


class TestFloatOps:
    def test_divd_by_zero_semantics(self):
        machine, ar, _ = run(
            [
                NativeInsn("movi", dst=8, imm=1.0),
                NativeInsn("movi", dst=9, imm=0.0),
                NativeInsn("divd", dst=10, a=8, b=9),
                NativeInsn("star", a=10, imm=0),
                NativeInsn("divd", dst=11, a=9, b=9),
                NativeInsn("star", a=11, imm=1),
                exit_insn(),
            ]
        )
        assert ar.slots[0] == math.inf
        assert math.isnan(ar.slots[1])

    def test_nan_comparisons(self):
        machine, ar, _ = run(
            [
                NativeInsn("movi", dst=8, imm=math.nan),
                NativeInsn("movi", dst=9, imm=1.0),
                NativeInsn("ltd", dst=0, a=8, b=9),
                NativeInsn("star", a=0, imm=0),
                NativeInsn("ned", dst=1, a=8, b=9),
                NativeInsn("star", a=1, imm=1),
                exit_insn(),
            ]
        )
        assert ar.slots[0] is False
        assert ar.slots[1] is True

    def test_conversions(self):
        machine, ar, _ = run(
            [
                NativeInsn("movi", dst=0, imm=3),
                NativeInsn("i2d", dst=8, a=0),
                NativeInsn("star", a=8, imm=0),
                NativeInsn("movi", dst=9, imm=2.0**32 + 7),
                NativeInsn("d2i32", dst=1, a=9),
                NativeInsn("star", a=1, imm=1),
                exit_insn(),
            ]
        )
        assert ar.slots[0] == 3.0
        assert ar.slots[1] == 7


class TestGuards:
    def test_gtag_pass_and_fail(self):
        box = make_number(5)
        exit = SideExit(kind="type", pc=0, frames=(), stack_depth0=0, livemap=())
        machine, _ar, event = run(
            [
                NativeInsn("movi", dst=0, imm=box),
                NativeInsn("gtag", a=0, imm=TraceType.INT, exit=exit),
                NativeInsn("gtag", a=0, imm=TraceType.DOUBLE, exit=exit),
                exit_insn(),
            ]
        )
        assert event.exit is exit  # the second gtag fails
        assert event.boxed_result is box

    def test_gtag_hole_matches_undefined(self):
        exit = SideExit(kind="type", pc=0, frames=(), stack_depth0=0, livemap=())
        _m, _ar, event = run(
            [
                NativeInsn("movi", dst=0, imm=None),
                NativeInsn("gtag", a=0, imm=TraceType.UNDEFINED, exit=exit),
                exit_insn(LOOP),
            ]
        )
        assert event.exit.kind == LOOP

    def test_gclass(self):
        from repro.runtime.objects import JSArray, JSObject

        exit = SideExit(kind="shape", pc=0, frames=(), stack_depth0=0, livemap=())
        _m, _ar, event = run(
            [
                NativeInsn("movi", dst=0, imm=JSArray()),
                NativeInsn("gclass", a=0, imm=JSArray, exit=exit),
                NativeInsn("movi", dst=1, imm=JSObject()),
                NativeInsn("gclass", a=1, imm=JSArray, exit=exit),
                exit_insn(),
            ]
        )
        assert event.exit is exit

    def test_xt_xf(self):
        exit = SideExit(kind="branch", pc=0, frames=(), stack_depth0=0, livemap=())
        _m, _ar, event = run(
            [
                NativeInsn("movi", dst=0, imm=True),
                NativeInsn("xf", a=0, exit=exit),  # passes
                NativeInsn("xt", a=0, exit=exit),  # fires
                exit_insn(),
            ]
        )
        assert event.exit is exit


class TestCalls:
    def test_helper_call(self):
        spec = CallSpec(kind="helper", name="h", fn=lambda vm, a, b: a * b, result_type="i")
        _m, ar, _e = run(
            [
                NativeInsn("movi", dst=0, imm=6),
                NativeInsn("movi", dst=1, imm=7),
                NativeInsn("call", dst=2, srcs=[0, 1], aux=spec),
                NativeInsn("star", a=2, imm=0),
                exit_insn(),
            ]
        )
        assert ar.slots[0] == 42

    def test_typed_call(self):
        spec = CallSpec(kind="typed", name="sqrt", fn=math.sqrt, result_type="d")
        _m, ar, _e = run(
            [
                NativeInsn("movi", dst=8, imm=16.0),
                NativeInsn("call", dst=9, srcs=[8], aux=spec),
                NativeInsn("star", a=9, imm=0),
                exit_insn(),
            ]
        )
        assert ar.slots[0] == 4.0

    def test_boxed_call_boxes_arguments(self):
        seen = {}

        def native(vm, this_box, args):
            seen["this"] = this_box
            seen["args"] = args
            return make_number(1)

        spec = CallSpec(
            kind="boxed",
            name="n",
            fn=native,
            arg_types=(TraceType.STRING, TraceType.INT),
            this_type=TraceType.STRING,
            result_type="x",
        )
        _m, _ar, _e = run(
            [
                NativeInsn("movi", dst=0, imm="hi"),
                NativeInsn("movi", dst=1, imm=5),
                NativeInsn("call", dst=2, srcs=[0, 1], aux=spec),
                exit_insn(),
            ]
        )
        assert seen["this"].payload == "hi"
        assert seen["args"][0].tag == TAG_INT

    def test_call_exception_becomes_exit_event(self):
        from repro.errors import JSThrow
        from repro.runtime.values import make_string

        def thrower(vm):
            raise JSThrow(make_string("boom"))

        spec = CallSpec(kind="helper", name="t", fn=thrower, result_type="v")
        call_exit = SideExit(kind="error", pc=9, frames=(), stack_depth0=0, livemap=())
        _m, _ar, event = run(
            [NativeInsn("call", srcs=[], aux=spec, exit=call_exit), exit_insn()]
        )
        assert event.exit is call_exit
        assert event.exception is not None


class TestRuntimeSafety:
    def test_infinite_loop_budget(self):
        from repro import VMConfig

        vm = BaselineVM(VMConfig(native_insn_budget=1000))
        with pytest.raises(NativeMachineError):
            run([NativeInsn("movi", dst=0, imm=1), NativeInsn("loopjmp")], vm=vm)

    def test_unknown_op_rejected(self):
        with pytest.raises(NativeMachineError):
            run([NativeInsn("frobnicate"), exit_insn()])


class TestGlobalArea:
    def test_write_marks_dirty(self):
        area = GlobalArea()
        area.write(0, 42, TraceType.INT)
        assert 0 in area.dirty
        assert area.read(0) == 42

    def test_negative_slot_encoding(self):
        ar = ActivationRecord(4, GlobalArea())
        ar.write(-1, 7)
        assert ar.globals.read(0) == 7
        assert ar.read(-1) == 7
        ar.write(2, 9)
        assert ar.read(2) == 9
