"""Tests for the extended builtin set (array methods, sort-with-comparator
reentrancy, String/Number converters, trim)."""

import pytest

from repro import BaselineVM
from tests.helpers import assert_engines_agree


def value(source):
    return BaselineVM().run(source).payload


class TestArrayMethods:
    def test_index_of(self):
        assert value("[5, 6, 7].indexOf(6);") == 1
        assert value("[5, 6, 7].indexOf(9);") == -1
        assert value("[1, 2, 1].indexOf(1, 1);") == 2
        assert value("['1'].indexOf(1);") == -1  # strict comparison

    def test_concat(self):
        assert value("[1, 2].concat([3, 4], 5).join(',');") == "1,2,3,4,5"
        assert value("[].concat([]).length;") == 0

    def test_shift_unshift(self):
        assert value("var a = [1, 2, 3]; a.shift();") == 1
        assert value("var a = [1, 2, 3]; a.shift(); a.length;") == 2
        assert value("[].shift() === undefined;") is True
        assert value("var a = [3]; a.unshift(1, 2); a.join(',');") == "1,2,3"

    def test_sort_default_is_string_order(self):
        assert value("[10, 9, 1].sort().join(',');") == "1,10,9"

    def test_sort_with_comparator(self):
        assert value(
            "function byNum(a, b) { return a - b; }"
            "[10, 9, 1].sort(byNum).join(',');"
        ) == "1,9,10"

    def test_sort_descending(self):
        assert value(
            "[3, 1, 2].sort(function (a, b) { return b - a; }).join(',');"
        ) == "3,2,1"

    def test_sort_returns_this(self):
        assert value("var a = [2, 1]; a.sort() === a;") is True


class TestConverters:
    def test_number_function(self):
        assert value("Number('42');") == 42
        assert value("Number(true);") == 1
        assert value("Number();") == 0

    def test_string_function(self):
        assert value("String(42);") == "42"
        assert value("String(true);") == "true"
        assert value("String();") == ""

    def test_string_from_char_code_still_works(self):
        assert value("String.fromCharCode(65);") == "A"

    def test_trim(self):
        assert value("'  hi  '.trim();") == "hi"
        assert value("'\\t\\nx\\t'.trim();") == "x"


class TestSortOnTrace:
    def test_sort_with_comparator_in_hot_loop(self):
        # The comparator reenters the interpreter from inside a native
        # call while a trace is running: the reentry flag must force an
        # exit and keep results identical.
        source = (
            "function byNum(a, b) { return a - b; }"
            "var t = 0;"
            "for (var i = 0; i < 30; i++) {"
            "  var a = [(i * 7) % 5, (i * 3) % 7, i % 3];"
            "  a.sort(byNum);"
            "  t += a[0] * 100 + a[1] * 10 + a[2];"
            "}"
            "t;"
        )
        assert_engines_agree(
            source, ("baseline", "threaded", "methodjit", "tracing")
        )

    def test_index_of_in_hot_loop(self):
        source = (
            "var words = ['alpha', 'beta', 'gamma', 'delta'];"
            "var t = 0;"
            "for (var i = 0; i < 60; i++) t += words.indexOf('gamma');"
            "t;"
        )
        assert_engines_agree(source, ("baseline", "tracing"))
