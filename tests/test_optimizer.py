"""Unit + behavioral tests for the whole-trace pass manager
(:mod:`repro.jit.optimizer`): tree-wide CSE / guard entailment, branch
seeding from side-exit snapshots, loop-invariant hoisting into the
entry prologue, and the ``LIns`` classification edge cases the passes
lean on (NaN / -0.0 immediates, softfloat helper calls, guard-vs-load
classification)."""

import math
from types import SimpleNamespace

from repro import VMConfig
from repro.core.exits import BRANCH, ENTRY, SideExit
from repro.core.lir import LIns, _const_key
from repro.jit.native import CallSpec
from repro.jit.optimizer import hoist_invariants, run_tree_cse
from tests.helpers import assert_engines_agree, run_tracing


class FakeClass:
    pass


def make_tree():
    return SimpleNamespace(opt_vn=None, entry_exit=None)


def make_exit(live=(), kind=BRANCH):
    return SideExit(kind=kind, pc=0, frames=(), stack_depth0=0, livemap=tuple(live))


def loop_end():
    return LIns("loop", aux=frozenset())


# ---------------------------------------------------------------------------
# Pass 1: tree-wide CSE / guard entailment.
# ---------------------------------------------------------------------------


class TestTreeCSE:
    def test_duplicate_keyed_guard_eliminated(self):
        obj = LIns("ldar", slot=0, type="o")
        first = LIns("gclass", (obj,), imm=FakeClass, exit=make_exit())
        second = LIns("gclass", (obj,), imm=FakeClass, exit=make_exit())
        out, _removed, guards = run_tree_cse(
            [obj, first, second, loop_end()], make_tree()
        )
        assert first in out
        assert second not in out
        assert guards == 1

    def test_different_class_guard_kept(self):
        obj = LIns("ldar", slot=0, type="o")
        first = LIns("gclass", (obj,), imm=FakeClass, exit=make_exit())
        second = LIns("gclass", (obj,), imm=int, exit=make_exit())
        out, _removed, guards = run_tree_cse(
            [obj, first, second, loop_end()], make_tree()
        )
        assert second in out
        assert guards == 0

    def test_conditional_guard_entailed_by_dominating_guard(self):
        cond = LIns("ldar", slot=0, type="b")
        first = LIns("xf", (cond,), exit=make_exit())
        second = LIns("xf", (cond,), exit=make_exit())
        out, _removed, guards = run_tree_cse(
            [cond, first, second, loop_end()], make_tree()
        )
        assert first in out
        assert second not in out
        assert guards == 1

    def test_duplicate_load_redirected_to_representative(self):
        a1 = LIns("ldar", slot=0, type="i")
        a2 = LIns("ldar", slot=0, type="i")
        add = LIns("addi", (a1, a2), type="i")
        store = LIns("star", (add,), slot=0)
        out, removed, _guards = run_tree_cse(
            [a1, a2, add, store, loop_end()], make_tree()
        )
        assert a2 not in out
        assert add.args == (a1, a1)
        assert removed == 1

    def test_store_to_load_forwarding(self):
        value = LIns("const", imm=7, type="i")
        store = LIns("star", (value,), slot=3)
        load = LIns("ldar", slot=3, type="i")
        add = LIns("addi", (load, load), type="i")
        keep = LIns("star", (add,), slot=3)
        out, removed, _guards = run_tree_cse(
            [value, store, load, add, keep, loop_end()], make_tree()
        )
        assert load not in out
        assert add.args == (value, value)
        assert removed == 1

    def test_exit_bearing_duplicate_never_dropped(self):
        # A second addi with an overflow exit must keep its guard even
        # though its value number is already known.
        a = LIns("ldar", slot=0, type="i")
        b = LIns("ldar", slot=1, type="i")
        plain = LIns("addi", (a, b), type="i")
        guarded = LIns("addi", (a, b), type="i", exit=make_exit())
        store = LIns("star", (guarded,), slot=0)
        out, _removed, _guards = run_tree_cse(
            [a, b, plain, guarded, store, loop_end()], make_tree()
        )
        assert guarded in out

    def test_call_invalidates_cached_loads(self):
        obj = LIns("ldar", slot=0, type="o")
        shape1 = LIns("ldshape", (obj,), type="i")
        spec = CallSpec(kind="helper", name="clobber", fn=None, result_type="b")
        call = LIns("call", (obj,), imm=spec, type="b")
        shape2 = LIns("ldshape", (obj,), type="i")
        sink = LIns("star", (shape2,), slot=1)
        sink1 = LIns("star", (shape1,), slot=2)
        out, removed, _guards = run_tree_cse(
            [obj, shape1, sink1, call, shape2, sink, loop_end()], make_tree()
        )
        assert shape2 in out  # the helper may have mutated the object
        assert removed == 0

    def test_branch_seeded_with_anchor_snapshot(self):
        # A class guard proven on the trunk is entailed in a branch
        # hanging off a later side exit.
        tree = make_tree()
        obj = LIns("ldar", slot=0, type="o")
        guard = LIns("gclass", (obj,), imm=FakeClass, exit=make_exit())
        cond = LIns("ldar", slot=1, type="b")
        anchor = make_exit()
        branch_point = LIns("xf", (cond,), exit=anchor)
        run_tree_cse([obj, guard, cond, branch_point, loop_end()], tree)

        branch_obj = LIns("param", slot=0, type="o")
        branch_guard = LIns("gclass", (branch_obj,), imm=FakeClass, exit=make_exit())
        out, _removed, guards = run_tree_cse(
            [branch_obj, branch_guard, LIns("x", exit=make_exit())],
            tree,
            anchor_exit=anchor,
        )
        assert branch_guard not in out
        assert guards == 1

    def test_branch_knows_anchor_guard_failed(self):
        # The branch at an xf exit only runs when the condition was
        # false, so re-checking falseness (an xt guard) is entailed.
        tree = make_tree()
        cond = LIns("ldar", slot=0, type="b")
        anchor = make_exit()
        trunk_guard = LIns("xf", (cond,), exit=anchor)
        run_tree_cse([cond, trunk_guard, loop_end()], tree)

        branch_cond = LIns("param", slot=0, type="b")
        redundant = LIns("xt", (branch_cond,), exit=make_exit())
        out, _removed, guards = run_tree_cse(
            [branch_cond, redundant, LIns("x", exit=make_exit())],
            tree,
            anchor_exit=anchor,
        )
        assert redundant not in out
        assert guards == 1

    def test_branch_without_snapshot_starts_cold(self):
        # An anchor exit the trunk never snapshotted (e.g. compiled
        # before this PR's state existed) must not inherit anything.
        tree = make_tree()
        orphan = make_exit()
        obj = LIns("param", slot=0, type="o")
        guard = LIns("gclass", (obj,), imm=FakeClass, exit=make_exit())
        out, _removed, guards = run_tree_cse(
            [obj, guard, LIns("x", exit=make_exit())], tree, anchor_exit=orphan
        )
        assert guard in out
        assert guards == 0


# ---------------------------------------------------------------------------
# Pass 3: loop-invariant hoisting.
# ---------------------------------------------------------------------------


class TestHoisting:
    def entry_tree(self):
        tree = make_tree()
        tree.entry_exit = make_exit(kind=ENTRY)
        return tree

    def test_invariant_load_and_guard_hoisted(self):
        tree = self.entry_tree()
        inv = LIns("ldar", slot=0, type="o")
        guard = LIns("gclass", (inv,), imm=FakeClass, exit=make_exit())
        var = LIns("ldar", slot=1, type="i")
        store = LIns("star", (var,), slot=1)
        out, loop_start, hoisted = hoist_invariants(
            [inv, guard, var, store, loop_end()], tree
        )
        assert loop_start == 2
        assert out[:2] == [inv, guard]
        assert hoisted == 2
        assert guard.exit is tree.entry_exit  # retargeted to loop-header deopt
        assert var in out[loop_start:]  # its slot is stored: loop-varying

    def test_no_loop_edge_means_no_hoisting(self):
        tree = self.entry_tree()
        inv = LIns("ldar", slot=0, type="i")
        lir = [inv, LIns("x", exit=make_exit())]
        out, loop_start, hoisted = hoist_invariants(lir, tree)
        assert out == lir
        assert loop_start == 0
        assert hoisted == 0

    def test_no_entry_exit_means_no_hoisting(self):
        tree = make_tree()  # entry_exit is None (pre-PR trees)
        inv = LIns("ldar", slot=0, type="i")
        lir = [inv, loop_end()]
        out, loop_start, hoisted = hoist_invariants(lir, tree)
        assert out == lir
        assert loop_start == 0

    def test_const_without_hoisted_consumer_stays_in_body(self):
        tree = self.entry_tree()
        const = LIns("const", imm=5, type="i")
        var = LIns("ldar", slot=0, type="i")
        add = LIns("addi", (var, const), type="i")
        store = LIns("star", (add,), slot=0)
        out, loop_start, hoisted = hoist_invariants(
            [const, var, add, store, loop_end()], tree
        )
        assert loop_start == 0  # nothing worth peeling
        assert hoisted == 0

    def test_aux_guard_stays_but_its_invariant_compare_hoists(self):
        # A guard carrying a boxed resume value (aux) never hoists, but
        # its invariant compare does — codegen cannot fuse aux-bearing
        # guards anyway, so the compare runs once instead of per
        # iteration.
        tree = self.entry_tree()
        inv1 = LIns("ldar", slot=0, type="i")
        inv2 = LIns("ldar", slot=1, type="i")
        boxed = LIns("boxv", (inv1,), imm="INT", type="x")
        cmp = LIns("lti", (inv1, inv2), type="b")
        guard = LIns("xf", (cmp,), exit=make_exit(), aux=boxed)
        out, loop_start, _hoisted = hoist_invariants(
            [inv1, inv2, boxed, cmp, guard, loop_end()], tree
        )
        assert loop_start == 3
        assert out[:3] == [inv1, inv2, cmp]
        assert guard in out[loop_start:]  # boxv allocates: body only

    def test_aux_none_guard_hoists_with_its_compare(self):
        # A plain conditional guard hoists together with its compare:
        # they stay adjacent in the prologue, so codegen still fuses
        # them into one compare-and-exit instruction there.
        tree = self.entry_tree()
        inv1 = LIns("ldar", slot=0, type="i")
        inv2 = LIns("ldar", slot=1, type="i")
        cmp = LIns("lti", (inv1, inv2), type="b")
        guard = LIns("xf", (cmp,), exit=make_exit())
        var = LIns("ldar", slot=2, type="i")
        store = LIns("star", (var,), slot=2)
        out, loop_start, _hoisted = hoist_invariants(
            [inv1, inv2, cmp, guard, var, store, loop_end()], tree
        )
        assert loop_start == 4
        assert out[:4] == [inv1, inv2, cmp, guard]
        assert guard.exit is tree.entry_exit

    def test_stored_global_not_hoisted(self):
        tree = self.entry_tree()
        glob = LIns("ldar", slot=-1, type="i")
        bump = LIns("addi", (glob, glob), type="i")
        store = LIns("star", (bump,), slot=-1)
        out, loop_start, _hoisted = hoist_invariants(
            [glob, bump, store, loop_end()], tree
        )
        assert loop_start == 0


# ---------------------------------------------------------------------------
# LIns classification edge cases the optimizer leans on (satellite).
# ---------------------------------------------------------------------------


class TestConstKeys:
    def test_negative_zero_distinct_from_positive_zero(self):
        # 0.0 == -0.0 in Python dict keys, but they are different JS
        # values (1/-0 is -Infinity): the key must keep the sign.
        pos = LIns("const", imm=0.0, type="d")
        neg = LIns("const", imm=-0.0, type="d")
        assert pos.cse_key() != neg.cse_key()
        assert _const_key(-0.0) != _const_key(0.0)

    def test_nan_constants_share_one_key(self):
        # NaN != NaN, so raw floats would never hit the table; JS has a
        # single NaN value, so merging NaN constants is sound.
        a = LIns("const", imm=float("nan"), type="d")
        b = LIns("const", imm=math.nan, type="d")
        assert a.cse_key() == b.cse_key()

    def test_ordinary_float_key_passes_through(self):
        assert _const_key(1.5) == 1.5
        assert _const_key(-1.5) == -1.5

    def test_unhashable_imm_keyed_by_identity(self):
        imm = [1, 2, 3]
        assert _const_key(imm) == ("id", id(imm))
        assert _const_key(imm) != _const_key([1, 2, 3])

    def test_cse_merges_nan_but_not_signed_zero(self):
        n1 = LIns("const", imm=float("nan"), type="d")
        n2 = LIns("const", imm=float("nan"), type="d")
        z1 = LIns("const", imm=0.0, type="d")
        z2 = LIns("const", imm=-0.0, type="d")
        sink = [
            LIns("star", (ins,), slot=slot)
            for slot, ins in enumerate((n1, n2, z1, z2))
        ]
        out, removed, _guards = run_tree_cse(
            [n1, n2, z1, z2, *sink, loop_end()], make_tree()
        )
        assert n2 not in out  # NaN consts merged
        assert z2 in out  # -0.0 kept distinct
        assert removed == 1


class TestClassification:
    def test_softfloat_helper_call_is_not_pure(self):
        # Softfloat helpers are marked pure on their CallSpec, but the
        # call *instruction* must never be CSE'd or DCE'd away.
        spec = CallSpec(
            kind="helper", name="softfloat_addd", fn=None,
            result_type="d", pure=True,
        )
        a = LIns("const", imm=1.5, type="d")
        call = LIns("call", (a, a), imm=spec, type="d")
        assert not call.is_pure
        assert call.has_effect
        assert call.cse_key() is None

    def test_exit_bearing_load_is_a_guard(self):
        plain = LIns("ldar", slot=0, type="i")
        guarded = LIns("ldar", slot=0, type="i", exit=make_exit())
        assert plain.is_load and not plain.is_guard
        assert not plain.has_effect
        assert guarded.is_load and guarded.is_guard
        assert guarded.has_effect

    def test_d2i_is_guard_not_pure(self):
        value = LIns("const", imm=1.5, type="d")
        conv = LIns("d2i", (value,), type="i", exit=make_exit())
        assert conv.is_guard
        assert not conv.is_pure
        assert conv.has_effect

    def test_runtime_varying_loads_have_no_cse_key(self):
        assert LIns("ldpreempt", type="b").cse_key() is None
        assert LIns("ldreentry", type="b").cse_key() is None
        assert LIns("ldelem", (LIns("ldar", slot=0, type="o"),), type="x").cse_key() is None


# ---------------------------------------------------------------------------
# End-to-end behavior.
# ---------------------------------------------------------------------------

INVARIANT_LOOP = (
    "var a = [7]; var s = 0;"
    "for (var i = 0; i < 80; i++) s += a[0];"
    "s;"
)


class TestOptimizerEndToEnd:
    def test_hoisting_reported_and_correct(self):
        vms = assert_engines_agree(INVARIANT_LOOP)
        tracing = vms["tracing"].stats.tracing
        assert tracing.opt_hoisted > 0
        tree = vms["tracing"].monitor.cache.all_trees()[0]
        assert tree.fragment.loop_start > 0
        assert tree.fragment.lir_loop_start > 0
        # The prologue holds the invariant shape guard, retargeted at
        # the tree's ENTRY exit.
        prologue = tree.fragment.lir[: tree.fragment.lir_loop_start]
        assert any(ins.op == "gclass" for ins in prologue)
        assert all(
            ins.exit is tree.entry_exit
            for ins in prologue
            if ins.exit is not None
        )

    def test_opt_levels_agree_on_results(self):
        reference, _vm = run_tracing(INVARIANT_LOOP)
        for level in (0, 1, 2):
            config = VMConfig()
            config.opt_level = level
            result, vm = run_tracing(INVARIANT_LOOP, config)
            assert repr(result) == repr(reference)
            if level < 2:
                assert vm.stats.tracing.opt_hoisted == 0

    def test_hoisting_reduces_cycles(self):
        low = VMConfig()
        low.opt_level = 0
        _r0, vm0 = run_tracing(INVARIANT_LOOP, low)
        _r2, vm2 = run_tracing(INVARIANT_LOOP)
        assert vm2.stats.total_cycles < vm0.stats.total_cycles

    def test_failed_entry_guard_reenters_interpreter(self):
        # The hoisted bounds guard fails when the array empties between
        # loop runs: the ENTRY exit must invalidate the tree and fall
        # back to the interpreter with correct semantics.
        source = (
            "var a = [3]; var s = 0;"
            "var j = 0;"
            "while (j < 2) {"
            "  var i = 0;"
            "  while (i < 80) { if (a.length > 0) { s += a[0]; } i += 1; }"
            "  a = [5];"
            "  j += 1;"
            "}"
            "s;"
        )
        assert_engines_agree(source)

    def test_backends_agree_with_hoisting(self):
        config = VMConfig()
        config.native_backend = "step"
        result_step, vm_step = run_tracing(INVARIANT_LOOP, config)
        result_py, vm_py = run_tracing(INVARIANT_LOOP)
        assert repr(result_step) == repr(result_py)
        assert vm_step.stats.total_cycles == vm_py.stats.total_cycles
        assert (
            vm_step.stats.summary_lines() == vm_py.stats.summary_lines()
        )
