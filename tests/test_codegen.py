"""Tests for code generation and register allocation (paper Section 5.2).

Includes a differential property test: random LIR DAGs are executed by
the native machine (through the register allocator, with only 8+8
registers, forcing spills) and compared against a direct evaluation of
the LIR with unlimited storage.
"""

import math

from hypothesis import given, settings, strategies as st

from repro.core.lir import LIns
from repro.jit.codegen import RegisterAllocator, format_native, generate
from repro.jit.native import (
    ActivationRecord,
    GlobalArea,
    N_INT_REGS,
    NativeMachine,
)
from repro.core.exits import LOOP, SideExit


class _FakeTree:
    header_pc = 0
    iterations = 0

    class fragment:
        native = []
        bytecount = 0


class _Fragment:
    def __init__(self, native):
        self.native = native
        self.kind = "root"
        self.bytecount = 0


def run_native(lir, slots, n_location_slots=8):
    """Compile ``lir`` and run it on the machine; returns final AR slots."""
    from repro.vm import BaselineVM

    vm = BaselineVM()  # provides stats/ledger
    native, n_spills, _ = generate(lir, spill_base=n_location_slots)
    ar = ActivationRecord(n_location_slots + n_spills, GlobalArea())
    ar.slots[: len(slots)] = slots
    machine = NativeMachine(vm, _FakeTree(), ar)
    event = machine.run(_Fragment(native))
    return ar.slots, event


def final_exit(slot_count=8):
    return SideExit(kind=LOOP, pc=0, frames=(), stack_depth0=0, livemap=tuple())


class TestBasicCodegen:
    def test_one_native_insn_per_simple_lir(self):
        # Figure 4: "Most LIR instructions compile to a single x86
        # instruction."
        a = LIns("param", slot=0, type="i")
        b = LIns("param", slot=1, type="i")
        add = LIns("addi", (a, b), type="i")
        store = LIns("star", (add,), slot=2)
        exit_ins = LIns("x", exit=final_exit())
        native, n_spills, _ = generate([a, b, add, store, exit_ins], spill_base=8)
        assert len(native) == 5
        assert n_spills == 0

    def test_execution_computes(self):
        a = LIns("param", slot=0, type="i")
        b = LIns("param", slot=1, type="i")
        add = LIns("addi", (a, b), type="i")
        store = LIns("star", (add,), slot=2)
        exit_ins = LIns("x", exit=final_exit())
        slots, _event = run_native([a, b, add, store, exit_ins], [20, 22, None])
        assert slots[2] == 42

    def test_guard_fuses_overflow(self):
        a = LIns("param", slot=0, type="i")
        add = LIns("addi", (a, a), type="i", exit=final_exit())
        native, _, _ = generate([a, add], spill_base=8)
        assert [insn.op for insn in native] == ["ldar", "addi", "govf"]

    def test_compare_fuses_into_guard(self):
        # Figure 4's ``cmp eax, Array / jne side_exit`` shape: a
        # single-use compare and its guard become one instruction.
        a = LIns("param", slot=0, type="i")
        b = LIns("param", slot=1, type="i")
        cmp_ins = LIns("lti", (a, b), type="b")
        guard = LIns("xf", (cmp_ins,), exit=final_exit())
        end = LIns("x", exit=final_exit())
        native, _, _ = generate([a, b, cmp_ins, guard, end], spill_base=8)
        assert [insn.op for insn in native] == ["ldar", "ldar", "gcmp", "x"]

    def test_multi_use_compare_not_fused(self):
        a = LIns("param", slot=0, type="i")
        b = LIns("param", slot=1, type="i")
        cmp_ins = LIns("lti", (a, b), type="b")
        guard = LIns("xf", (cmp_ins,), exit=final_exit())
        keep = LIns("star", (cmp_ins,), slot=2)  # second use
        end = LIns("x", exit=final_exit())
        native, _, _ = generate([a, b, cmp_ins, guard, keep, end], spill_base=8)
        ops = [insn.op for insn in native]
        assert "gcmp" not in ops
        assert "lti" in ops and "xf" in ops

    def test_fused_guard_execution(self):
        a = LIns("param", slot=0, type="i")
        b = LIns("param", slot=1, type="i")
        cmp_ins = LIns("lti", (a, b), type="b")
        exit_taken = final_exit()
        guard = LIns("xf", (cmp_ins,), exit=exit_taken)
        store = LIns("star", (a,), slot=2)
        end = LIns("x", exit=final_exit())
        lir = [a, b, cmp_ins, guard, store, end]
        # a < b: guard passes, store runs.
        slots, event = run_native(lir, [1, 2, None])
        assert slots[2] == 1
        assert event.exit is not exit_taken
        # a >= b: guard fires.
        slots, event = run_native(lir, [5, 2, None])
        assert slots[2] is None
        assert event.exit is exit_taken

    def test_unused_const_skipped(self):
        unused = LIns("const", imm=5, type="i")
        exit_ins = LIns("x", exit=final_exit())
        native, _, _ = generate([unused, exit_ins], spill_base=8)
        assert [insn.op for insn in native] == ["x"]

    def test_format_native_is_readable(self):
        a = LIns("param", slot=0, type="i")
        exit_ins = LIns("x", exit=final_exit())
        native, _, _ = generate([a, LIns("star", (a,), slot=1), exit_ins], spill_base=8)
        text = format_native(native)
        assert "ldar" in text and "star" in text


class TestRegisterPressure:
    def test_spills_when_pressure_exceeds_registers(self):
        """Keep N_INT_REGS+4 values live simultaneously -> must spill."""
        live = [LIns("param", slot=index, type="i") for index in range(N_INT_REGS + 4)]
        lir = list(live)
        total = live[0]
        for value in live[1:]:
            total = LIns("addi", (total, value), type="i")
            lir.append(total)
        lir.append(LIns("star", (total,), slot=20))
        lir.append(LIns("x", exit=final_exit()))
        native, n_spills, _ = generate(lir, spill_base=32)
        assert n_spills > 0
        slots, _event = run_native(lir, list(range(1, N_INT_REGS + 5)), 32)
        assert slots[20] == sum(range(1, N_INT_REGS + 5))

    def test_float_and_int_files_independent(self):
        ints = [LIns("param", slot=index, type="i") for index in range(N_INT_REGS)]
        floats = [
            LIns("param", slot=N_INT_REGS + index, type="d") for index in range(4)
        ]
        lir = ints + floats
        isum = ints[0]
        for value in ints[1:]:
            isum = LIns("addi", (isum, value), type="i")
            lir.append(isum)
        fsum = floats[0]
        for value in floats[1:]:
            fsum = LIns("addd", (fsum, value), type="d")
            lir.append(fsum)
        lir.append(LIns("star", (isum,), slot=20))
        lir.append(LIns("star", (fsum,), slot=21))
        lir.append(LIns("x", exit=final_exit()))
        native, n_spills, _ = generate(lir, spill_base=32)
        assert n_spills == 0  # separate files: no pressure
        values = list(range(N_INT_REGS)) + [0.5 * i for i in range(4)]
        slots, _event = run_native(lir, values, 32)
        assert slots[20] == sum(range(N_INT_REGS))
        assert slots[21] == sum(0.5 * i for i in range(4))


# -- differential property test ---------------------------------------------


def eval_lir(lir, slots):
    """Reference evaluator: unlimited virtual registers."""
    env = {}
    memory = list(slots) + [None] * 64
    for ins in lir:
        op = ins.op
        if op == "param":
            env[ins.ins_id] = memory[ins.slot]
        elif op == "const":
            env[ins.ins_id] = ins.imm
        elif op == "addi":
            env[ins.ins_id] = env[ins.args[0].ins_id] + env[ins.args[1].ins_id]
        elif op == "subi":
            env[ins.ins_id] = env[ins.args[0].ins_id] - env[ins.args[1].ins_id]
        elif op == "muli":
            env[ins.ins_id] = env[ins.args[0].ins_id] * env[ins.args[1].ins_id]
        elif op == "negi":
            env[ins.ins_id] = -env[ins.args[0].ins_id]
        elif op == "star":
            memory[ins.slot] = env[ins.args[0].ins_id]
        elif op == "x":
            break
        else:
            raise AssertionError(f"unhandled {op}")
    return memory


@st.composite
def lir_programs(draw):
    """Random straight-line int LIR with enough live values to spill."""
    n_params = draw(st.integers(min_value=1, max_value=6))
    params = [LIns("param", slot=index, type="i") for index in range(n_params)]
    values = list(params)
    lir = list(params)
    n_ops = draw(st.integers(min_value=1, max_value=40))
    for _ in range(n_ops):
        kind = draw(st.sampled_from(["addi", "subi", "muli", "negi", "const", "star"]))
        if kind == "const":
            ins = LIns("const", imm=draw(st.integers(-100, 100)), type="i")
            values.append(ins)
        elif kind == "negi":
            ins = LIns("negi", (draw(st.sampled_from(values)),), type="i")
            values.append(ins)
        elif kind == "star":
            source = draw(st.sampled_from(values))
            ins = LIns("star", (source,), slot=draw(st.integers(8, 20)))
        else:
            left = draw(st.sampled_from(values))
            right = draw(st.sampled_from(values))
            ins = LIns(kind, (left, right), type="i")
            values.append(ins)
        lir.append(ins)
    # Store every live value so results are observable.
    for offset, value in enumerate(values[-8:]):
        lir.append(LIns("star", (value,), slot=21 + offset))
    lir.append(LIns("x", exit=final_exit()))
    inputs = draw(
        st.lists(
            st.integers(-50, 50), min_size=n_params, max_size=n_params
        )
    )
    return lir, inputs


@given(lir_programs())
@settings(max_examples=120, deadline=None)
def test_regalloc_matches_reference_evaluator(program):
    """The machine (8 registers, spilling) computes exactly what an
    unlimited-register evaluation of the same LIR computes."""
    lir, inputs = program
    expected = eval_lir(lir, inputs)
    slots, _event = run_native(lir, inputs, n_location_slots=32)
    assert slots[21:29] == expected[21:29]
    assert slots[8:21] == expected[8:21]
