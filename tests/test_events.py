"""Tests for the structured trace-lifecycle event stream and the
stats-as-a-fold wiring."""

import io
import json

from repro import TracingVM, VMConfig
from repro.cli import main as cli_main
from repro.core import events as eventkind
from repro.core.events import EventStream, TraceEvent
from tests.helpers import run_tracing

BRANCHY = (
    "var t = 0;"
    "for (var i = 0; i < 120; i++) { if (i % 4 == 0) t += 3; else t += 1; }"
    "t;"
)


class TestEventStream:
    def test_emit_dispatches_without_capture(self):
        stream = EventStream()
        seen = []
        stream.subscribe(seen.append)
        stream.emit(eventkind.FLUSH, reason="test")
        assert len(seen) == 1
        assert seen[0].kind == "flush"
        assert len(stream) == 0  # not retained
        assert stream.counts == {"flush": 1}

    def test_capture_retains_in_order(self):
        stream = EventStream(capture=True)
        stream.emit(eventkind.RECORD_START, code="f", pc=1)
        stream.emit(eventkind.COMPILE, fragment="root")
        assert [e.kind for e in stream] == ["record-start", "compile"]
        assert [e.seq for e in stream] == [1, 2]

    def test_capture_limit_keeps_most_recent(self):
        stream = EventStream(capture=True, limit=2)
        for pc in range(5):
            stream.emit(eventkind.SIDE_EXIT, pc=pc)
        assert [e.payload["pc"] for e in stream] == [3, 4]

    def test_jsonl_round_trip(self):
        stream = EventStream(capture=True)
        stream.emit(eventkind.LINK, fragment="branch", exit_id=7, code="f")
        record = json.loads(stream.to_jsonl())
        assert record == {
            "schema_version": eventkind.EVENT_SCHEMA_VERSION,
            "seq": 1,
            "kind": "link",
            "fragment": "branch",
            "exit_id": 7,
            "code": "f",
        }

    def test_every_record_carries_schema_version(self):
        stream = EventStream(capture=True)
        stream.emit(eventkind.RECORD_START, code="f", pc=1)
        stream.emit(eventkind.SIDE_EXIT, exit_id=0)
        for line in stream.to_jsonl().splitlines():
            assert (
                json.loads(line)["schema_version"]
                == eventkind.EVENT_SCHEMA_VERSION
            )

    def test_of_kind_and_clear(self):
        stream = EventStream(capture=True)
        stream.emit(eventkind.BACKOFF, pc=0)
        stream.emit(eventkind.FLUSH, reason="x")
        assert len(stream.of_kind(eventkind.FLUSH)) == 1
        stream.clear()
        assert len(stream) == 0

    def test_repr_is_informative(self):
        event = TraceEvent(3, "compile", {"code": "f"})
        assert "compile" in repr(event)
        assert "'f'" in repr(event)


class TestStatsFold:
    def test_counters_match_event_counts(self):
        config = VMConfig(capture_events=True)
        _r, vm = run_tracing(BRANCHY, config)
        counts = vm.events.counts
        tracing = vm.stats.tracing
        assert tracing.recordings_started == counts.get("record-start", 0)
        assert tracing.traces_completed == counts.get("compile", 0)
        assert tracing.side_exits_taken == counts.get("side-exit", 0)
        assert tracing.fragments_linked == counts.get("link", 0)
        assert tracing.traces_aborted == counts.get("record-abort", 0)
        assert tracing.blacklisted == counts.get("blacklist", 0)

    def test_every_run_emits_lifecycle_events(self):
        config = VMConfig(capture_events=True)
        _r, vm = run_tracing(BRANCHY, config)
        kinds = {e.kind for e in vm.events}
        assert eventkind.RECORD_START in kinds
        assert eventkind.COMPILE in kinds
        assert eventkind.LINK in kinds
        assert eventkind.SIDE_EXIT in kinds

    def test_abort_reasons_typed_and_folded(self):
        # `throw` inside a hot loop aborts recording.
        source = (
            "var t = 0;"
            "for (var i = 0; i < 40; i++) {"
            "  try { if (i == 1000) throw 'x'; t += 1; } catch (e) { t += 2; }"
            "}"
            "t;"
        )
        _r, vm = run_tracing(source, VMConfig(capture_events=True))
        tracing = vm.stats.tracing
        if tracing.traces_aborted:
            assert tracing.abort_reasons
            assert all(
                isinstance(k, str) and isinstance(v, int)
                for k, v in tracing.abort_reasons.items()
            )
            reasons = [e.payload["reason"] for e in vm.events.of_kind("record-abort")]
            assert sum(tracing.abort_reasons.values()) == len(reasons)

    def test_top_abort_reasons_in_summary(self):
        vm = TracingVM()
        vm.stats.tracing.count_abort("rare")
        for _ in range(5):
            vm.stats.tracing.count_abort("common")
        text = "\n".join(vm.stats.summary_lines())
        assert "top abort reasons" in text
        # Ranked by count: the common reason leads.
        top_line = next(l for l in text.splitlines() if "top abort" in l)
        assert top_line.index("common") < top_line.index("rare")
        assert vm.stats.tracing.top_abort_reasons(1) == [("common", 5)]

    def test_payloads_are_json_scalars(self):
        config = VMConfig(capture_events=True, code_cache_budget=300)
        _r, vm = run_tracing(
            "function f(n) { var s = 0; for (var i = 0; i < n; i++) s += i; "
            "return s; }"
            "function g(n) { var s = 0; for (var i = 0; i < n; i++) s += 2; "
            "return s; }"
            "var t = 0;"
            "for (var r = 0; r < 10; r++) { t = t + f(30) + g(30); }"
            "t;",
            config,
        )
        for event in vm.events:
            for key, value in event.payload.items():
                assert isinstance(value, (str, int, float, bool, type(None))), (
                    event.kind,
                    key,
                    value,
                )


class TestCLIEvents:
    PROGRAM = "var s = 0; for (var i = 0; i < 50; i++) s += i; s;"

    def test_events_flag_prints_jsonl(self):
        out = io.StringIO()
        status = cli_main(["-e", self.PROGRAM, "--no-result", "--events"], out=out)
        assert status == 0
        lines = [line for line in out.getvalue().splitlines() if line.strip()]
        assert lines
        records = [json.loads(line) for line in lines]
        assert any(r["kind"] == "record-start" for r in records)
        assert any(r["kind"] == "link" for r in records)

    def test_dump_events_writes_file(self, tmp_path):
        target = tmp_path / "events.jsonl"
        out = io.StringIO()
        status = cli_main(
            ["-e", self.PROGRAM, "--no-result", "--dump-events", str(target)],
            out=out,
        )
        assert status == 0
        records = [
            json.loads(line) for line in target.read_text().splitlines() if line
        ]
        assert records
        assert records[0]["seq"] == 1
        assert any(r["kind"] == "compile" for r in records)

    def test_events_on_baseline_engine_is_empty(self):
        out = io.StringIO()
        status = cli_main(
            ["-e", self.PROGRAM, "--no-result", "--events", "--engine", "baseline"],
            out=out,
        )
        assert status == 0
        assert out.getvalue().strip() == ""
