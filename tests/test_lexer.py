"""Unit tests for the JSLite lexer."""

import pytest

from repro.errors import JSLiteSyntaxError
from repro.frontend.lexer import tokenize
from repro.frontend.tokens import EOF, IDENT, KEYWORD, NUMBER, PUNCT, STRING


def kinds(source):
    return [token.kind for token in tokenize(source)]


def values(source):
    return [token.value for token in tokenize(source)[:-1]]


class TestNumbers:
    def test_integer(self):
        tokens = tokenize("42")
        assert tokens[0].kind == NUMBER
        assert tokens[0].value == 42.0

    def test_float(self):
        assert tokenize("3.25")[0].value == 3.25

    def test_leading_dot(self):
        assert tokenize(".5")[0].value == 0.5

    def test_exponent(self):
        assert tokenize("1e3")[0].value == 1000.0
        assert tokenize("2.5e-2")[0].value == 0.025
        assert tokenize("1E+2")[0].value == 100.0

    def test_hex(self):
        assert tokenize("0xFF")[0].value == 255.0
        assert tokenize("0X10")[0].value == 16.0

    def test_malformed_hex(self):
        with pytest.raises(JSLiteSyntaxError):
            tokenize("0x")

    def test_malformed_exponent(self):
        with pytest.raises(JSLiteSyntaxError):
            tokenize("1e")


class TestStrings:
    def test_single_quotes(self):
        assert tokenize("'abc'")[0].value == "abc"

    def test_double_quotes(self):
        assert tokenize('"abc"')[0].value == "abc"

    def test_escapes(self):
        assert tokenize(r"'a\nb\tc'")[0].value == "a\nb\tc"
        assert tokenize(r"'\\'")[0].value == "\\"
        assert tokenize(r"'\''")[0].value == "'"

    def test_hex_escape(self):
        assert tokenize(r"'\x41'")[0].value == "A"

    def test_unicode_escape(self):
        assert tokenize(r"'B'")[0].value == "B"

    def test_unterminated(self):
        with pytest.raises(JSLiteSyntaxError):
            tokenize("'abc")

    def test_newline_in_string(self):
        with pytest.raises(JSLiteSyntaxError):
            tokenize("'a\nb'")

    def test_bad_hex_escape(self):
        with pytest.raises(JSLiteSyntaxError):
            tokenize(r"'\xZZ'")


class TestIdentifiersAndKeywords:
    def test_identifier(self):
        token = tokenize("fooBar_3$")[0]
        assert token.kind == IDENT
        assert token.value == "fooBar_3$"

    def test_keywords(self):
        for word in ("var", "function", "if", "while", "return", "new", "typeof"):
            assert tokenize(word)[0].kind == KEYWORD

    def test_keyword_prefix_is_identifier(self):
        assert tokenize("variable")[0].kind == IDENT


class TestPunctuation:
    def test_longest_match(self):
        assert values("a >>>= b") == ["a", ">>>=", "b"]
        assert values("a === b") == ["a", "===", "b"]
        assert values("a == b") == ["a", "==", "b"]
        assert values("a <<= 1") == ["a", "<<=", 1.0]

    def test_increment(self):
        assert values("i++") == ["i", "++"]

    def test_all_single_chars(self):
        for ch in "{}()[];,<>+-*/%&|^~!?:=.":
            token = tokenize(f"a {ch} b" if ch != "." else "a . b")[1]
            assert token.kind == PUNCT
            assert token.value == ch


class TestComments:
    def test_line_comment(self):
        assert values("a // comment\nb") == ["a", "b"]

    def test_block_comment(self):
        assert values("a /* x\ny */ b") == ["a", "b"]

    def test_unterminated_block(self):
        with pytest.raises(JSLiteSyntaxError):
            tokenize("/* never ends")


class TestPositions:
    def test_line_tracking(self):
        tokens = tokenize("a\nb\n  c")
        assert tokens[0].line == 1
        assert tokens[1].line == 2
        assert tokens[2].line == 3
        assert tokens[2].column == 3

    def test_eof_token(self):
        assert tokenize("")[-1].kind == EOF
        assert tokenize("x")[-1].kind == EOF

    def test_error_carries_position(self):
        try:
            tokenize("a\n  @")
        except JSLiteSyntaxError as error:
            assert error.line == 2
        else:
            raise AssertionError("expected a syntax error")
