"""Differential semantics: the tracing VM must agree with the baseline
interpreter on every program (tracing is an optimization, not a dialect).
"""

import pytest

from tests.helpers import assert_engines_agree

LOOPY_PROGRAMS = [
    # arithmetic / types
    "var s = 0; for (var i = 0; i < 100; i++) s += i; s;",
    "var s = 0; for (var i = 0; i < 100; i++) s += i * 0.5; s;",
    "var p = 1; for (var i = 1; i < 12; i++) p *= i; p;",
    "var t = 1; for (var i = 0; i < 40; i++) t = t * 2; t;",  # int overflow
    "var x = 0; for (var i = 0; i < 100; i++) x += 0.25; x;",  # int->double
    "var t = 0; for (var i = 1; i < 60; i++) t += (i % 7) / 2; t;",
    "var t = 0; for (var i = 0; i < 60; i++) t += -i; t;",
    # bitwise
    "var b = -1; for (var i = 0; i < 200; i++) b = b & ~i; b;",
    "var t = 0; for (var i = 0; i < 100; i++) t ^= (i << 3) | (i >> 1); t;",
    "var t = 0; for (var i = 0; i < 100; i++) t = (t + 0x40000000) >>> 1; t;",
    "var t = 0; for (var i = 0; i < 64; i++) t += (-i) >>> 28; t;",
    # control flow
    "var a = 0, b = 0; for (var i = 0; i < 150; i++) { if (i % 2) a++; else b += 2; } a * 1000 + b;",
    "var t = 0; for (var i = 0; i < 500; i++) { if (i > 60) break; t += i; } t;",
    "var t = 0; for (var i = 0; i < 80; i++) { if (i % 3 == 0) continue; t += i; } t;",
    "var t = 0; for (var i = 0; i < 90; i++) t += (i % 3 == 0 && i % 5 == 0) ? 10 : 1; t;",
    "var n = 0, t = 0; while (n < 70) { t += n; n++; } t;",
    "var n = 0, t = 0; do { t += n; n++; } while (n < 70); t;",
    "var t = 0; for (var i = 0; i < 60; i++) t += (i < 30 || i > 50) ? 1 : 0; t;",
    # nested loops
    "var t = 0; for (var i = 0; i < 25; i++) for (var j = 0; j < 25; j++) t += i * j; t;",
    "var t = 0; for (var i = 0; i < 12; i++) for (var j = 0; j < 12; j++) for (var k = 0; k < 4; k++) t++; t;",
    "var t = 0; for (var i = 0; i < 20; i++) { var j = 0; while (j < i) { t += j; j++; } } t;",
    # functions
    "function sq(n) { return n * n; } var t = 0; for (var i = 0; i < 80; i++) t += sq(i); t;",
    "function f(n) { return g(n) + 1; } function g(n) { return n * 2; } var t = 0; for (var i = 0; i < 80; i++) t += f(i); t;",
    "function pick(n) { if (n % 2) return n; return -n; } var t = 0; for (var i = 0; i < 80; i++) t += pick(i); t;",
    "function inner(n) { var s = 0; for (var k = 0; k < 5; k++) s += n; return s; } var t = 0; for (var i = 0; i < 40; i++) t += inner(i); t;",
    # objects and arrays
    "var o = {x: 1, y: 2}; var t = 0; for (var i = 0; i < 80; i++) t += o.x + o.y; t;",
    "var o = {x: 0}; for (var i = 0; i < 80; i++) o.x = o.x + i; o.x;",
    "var a = new Array(50); for (var i = 0; i < 50; i++) a[i] = i * i; var t = 0; for (var j = 0; j < 50; j++) t += a[j]; t;",
    "var a = new Array(0); for (var i = 0; i < 100; i++) a[a.length] = i; a.length;",
    "var a = [1, 2.5, 3]; var t = 0; for (var i = 0; i < 60; i++) t += a[i % 3]; t;",  # mixed types in array
    "var proto = {base: 10}; function Make() {} Make.prototype.base = 10; var t = 0; var o = new Make(); for (var i = 0; i < 60; i++) t += o.base; t;",
    # strings
    "var s = ''; for (var i = 0; i < 40; i++) s += 'xy'; s.length;",
    "var t = 0; var w = 'hello world'; for (var i = 0; i < 120; i++) t += w.charCodeAt(i % 11); t;",
    "var t = 0; for (var i = 0; i < 50; i++) t += ('abc' < 'abd') ? 1 : 0; t;",
    "var s = ''; for (var i = 0; i < 30; i++) s += i + ','; s.length;",
    "var w = 'abcdef'; var t = ''; for (var i = 0; i < 60; i++) t = w[i % 6]; t;",
    # natives
    "var t = 0; for (var i = 0; i < 60; i++) t += Math.sqrt(i) + Math.sin(i); Math.floor(t * 1000);",
    "var t = 0; for (var i = 0; i < 60; i++) t += Math.floor(i / 7); t;",
    "var t = 0; for (var i = 0; i < 60; i++) t = Math.max(t, i % 13); t;",
    # equality specialization
    "var t = 0; for (var i = 0; i < 80; i++) { if (i === 40) t += 100; if (i != 79) t++; } t;",
    "var t = 0; var u; for (var i = 0; i < 60; i++) { if (u == null) t++; } t;",
    "var a = {}; var b = {}; var t = 0; for (var i = 0; i < 60; i++) t += (a === b) ? 1 : 0; t;",
    # typeof on primitives
    "var t = ''; for (var i = 0; i < 40; i++) t = typeof i; t;",
    # update expressions
    "var a = [0]; for (var i = 0; i < 60; i++) a[0]++; a[0];",
    "var o = {n: 0}; for (var i = 0; i < 60; i++) ++o.n; o.n;",
    # globals written from functions
    "var g = 0; function bump(i) { g = g + i; } for (var i = 0; i < 70; i++) bump(i); g;",
    # interpreted constructors inline onto the trace
    "function P(x) { this.x = x; } var t = 0; for (var i = 0; i < 70; i++) t += new P(i).x; t;",
    "function V(a, b) { this.a = a; this.b = b; } var t = 0; for (var i = 0; i < 60; i++) { var v = new V(i, i * 2); t += v.a + v.b; } t;",
    "var sink = {s: 9}; function W() { return sink; } var t = 0; for (var i = 0; i < 60; i++) t += new W().s; t;",
    # loop completion values / multiple loops sharing globals
    "var x = 0; for (var i = 0; i < 30; i++) x += i; for (var j = 0; j < 30; j++) x -= j; x;",
]


@pytest.mark.parametrize("source", LOOPY_PROGRAMS)
def test_tracing_agrees_with_baseline(source):
    assert_engines_agree(source, ("baseline", "tracing"))


UNTRACEABLE_PROGRAMS = [
    # recursion only
    "function fib(n) { if (n < 2) return n; return fib(n-1) + fib(n-2); } fib(14);",
    # eval-like native in a hot loop (abort + blacklist)
    "var t = 0; for (var i = 0; i < 40; i++) t += hostEval('1+1'); t;",
    # exceptions in a hot loop
    "var t = 0; for (var i = 0; i < 40; i++) { try { throw i; } catch (e) { t += e; } } t;",
    # delete in a hot loop
    "var t = 0; for (var i = 0; i < 40; i++) { var o = {x: i}; delete o.x; t += o.x === undefined ? 1 : 0; } t;",
]


@pytest.mark.parametrize("source", UNTRACEABLE_PROGRAMS)
def test_untraceable_programs_still_correct(source):
    assert_engines_agree(source, ("baseline", "tracing"))


def test_tracing_actually_traces():
    from tests.helpers import run_tracing

    _result, vm = run_tracing("var s = 0; for (var i = 0; i < 200; i++) s += i; s;")
    assert vm.stats.tracing.trees_formed >= 1
    assert vm.stats.profile.fraction_native() > 0.9


def test_tracing_beats_baseline_on_type_stable_loop():
    from tests.helpers import run_baseline, run_tracing

    source = "var s = 0; for (var i = 0; i < 2000; i++) s += i & 0xff; s;"
    _r1, base = run_baseline(source)
    _r2, trace = run_tracing(source)
    assert base.stats.total_cycles / trace.stats.total_cycles > 2.0


def test_output_side_effects_match():
    from tests.helpers import ALL_ENGINES

    source = "for (var i = 0; i < 10; i++) if (i % 3 == 0) print('tick', i);"
    outputs = []
    for name in ("baseline", "tracing"):
        vm = ALL_ENGINES[name]()
        vm.run(source)
        outputs.append(vm.output)
    assert outputs[0] == outputs[1]
    assert outputs[0] == ["tick 0", "tick 3", "tick 6", "tick 9"]
