"""Tests for the builtin library (Math, String, Array, globals)."""

import math

import pytest

from repro import BaselineVM


def value(source):
    return BaselineVM().run(source).payload


class TestMath:
    def test_constants(self):
        assert abs(value("Math.PI;") - math.pi) < 1e-12
        assert abs(value("Math.E;") - math.e) < 1e-12

    def test_kernels(self):
        assert value("Math.sqrt(16);") == 4
        assert abs(value("Math.sin(0);")) == 0
        assert value("Math.abs(-3);") == 3
        assert value("Math.floor(3.9);") == 3
        assert value("Math.ceil(3.1);") == 4
        assert value("Math.round(2.5);") == 3
        assert value("Math.pow(2, 10);") == 1024

    def test_sqrt_negative_is_nan(self):
        assert math.isnan(value("Math.sqrt(-1);"))

    def test_log_edge_cases(self):
        assert value("Math.log(0);") == -math.inf
        assert math.isnan(value("Math.log(-1);"))

    def test_min_max(self):
        assert value("Math.min(3, 1, 2);") == 1
        assert value("Math.max(3, 1, 2);") == 3
        assert math.isnan(value("Math.min(1, NaN);"))
        assert value("Math.max();") == -math.inf

    def test_random_deterministic_per_vm(self):
        first = BaselineVM().run("Math.random();").payload
        second = BaselineVM().run("Math.random();").payload
        assert first == second
        assert 0.0 <= first < 1.0

    def test_random_sequence_varies(self):
        values = BaselineVM().run(
            "var a = Math.random(); var b = Math.random(); a == b;"
        ).payload
        assert values is False


class TestStringBuiltins:
    def test_from_char_code(self):
        assert value("String.fromCharCode(72, 105);") == "Hi"

    def test_char_code_at_out_of_range_nan(self):
        assert math.isnan(value("'ab'.charCodeAt(5);"))

    def test_index_of_with_start(self):
        assert value("'abcabc'.indexOf('b', 2);") == 4
        assert value("'abc'.indexOf('z');") == -1

    def test_last_index_of(self):
        assert value("'abcabc'.lastIndexOf('b');") == 4

    def test_substring_swaps_and_clamps(self):
        assert value("'hello'.substring(3, 1);") == "el"
        assert value("'hello'.substring(-5, 99);") == "hello"

    def test_split_empty_separator(self):
        assert value("'abc'.split('').length;") == 3

    def test_replace_first_only(self):
        assert value("'aaa'.replace('a', 'b');") == "baa"

    def test_concat_method(self):
        assert value("'a'.concat('b', 'c');") == "abc"


class TestArrayBuiltins:
    def test_push_pop(self):
        assert value("var a = [1]; a.push(2, 3); a.pop() + a.length;") == 5

    def test_pop_empty(self):
        assert value("[].pop() === undefined;") is True

    def test_join(self):
        assert value("[1, 2, 3].join('+');") == "1+2+3"
        assert value("[1, 2].join();") == "1,2"

    def test_reverse_in_place(self):
        assert value("var a = [1, 2, 3]; a.reverse(); a[0];") == 3

    def test_slice(self):
        assert value("[1,2,3,4].slice(1, 3).join(',');") == "2,3"
        assert value("[1,2,3,4].slice(-2).join(',');") == "3,4"

    def test_array_constructor(self):
        assert value("new Array(5).length;") == 5
        assert value("Array(1, 2, 3).length;") == 3


class TestGlobalFunctions:
    def test_parse_int(self):
        assert value("parseInt('42');") == 42
        assert value("parseInt('  -17 ');") == -17
        assert value("parseInt('ff', 16);") == 255
        assert value("parseInt('0x1A', 16);") == 26
        assert value("parseInt('12abc');") == 12
        assert math.isnan(value("parseInt('zz');"))

    def test_parse_float(self):
        assert value("parseFloat('3.5xyz');") == 3.5
        assert math.isnan(value("parseFloat('no');"))

    def test_is_nan_is_finite(self):
        assert value("isNaN(NaN);") is True
        assert value("isNaN('12');") is False
        assert value("isFinite(Infinity);") is False
        assert value("isFinite(1);") is True

    def test_print_collects_output(self):
        vm = BaselineVM()
        vm.run("print('hello', 42);")
        assert vm.output == ["hello 42"]

    def test_host_eval(self):
        assert value("hostEval('6 * 7');") == 42

    def test_read_write_global(self):
        assert value("var g = 1; writeGlobal('g', 5); readGlobal('g');") == 5

    def test_reenter(self):
        assert value("function f(x) { return x * 2; } reenter(f, 21);") == 42
