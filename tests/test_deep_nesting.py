"""Edge cases of nested trace trees (paper Section 4.1): inner trees in
callees, unexpected inner exits at runtime, type promotion across the
call boundary, inner trees growing after the outer compiled, and
exceptions crossing a nested tree call."""

from repro import TracingVM, VMConfig
from tests.helpers import assert_engines_agree, run_tracing


class TestCalltreeInCallee:
    def test_inner_tree_anchored_in_function(self):
        source = (
            "function work(n) { var s = 0; for (var k = 0; k < 12; k++) s += n + k; return s; }"
            "var t = 0; for (var i = 0; i < 50; i++) t += work(i); t;"
        )
        vms = assert_engines_agree(source, ("baseline", "tracing"))
        tracing = vms["tracing"].stats.tracing
        assert tracing.tree_calls_recorded >= 1
        assert tracing.tree_calls_executed > 10

    def test_two_callees_each_with_loops(self):
        source = (
            "function a(n) { var s = 0; for (var k = 0; k < 6; k++) s += n; return s; }"
            "function b(n) { var s = 1; for (var k = 0; k < 6; k++) s *= 1 + (n & 1); return s; }"
            "var t = 0; for (var i = 0; i < 50; i++) t += a(i) + b(i); t;"
        )
        assert_engines_agree(source, ("baseline", "tracing"))


class TestUnexpectedInnerExits:
    def test_inner_branch_changes_at_runtime(self):
        # The inner loop takes a different path for large i: the outer
        # trace's calltree guard fails and execution recovers through
        # the chained inner exit.
        source = (
            "var t = 0;"
            "for (var i = 0; i < 60; i++) {"
            "  for (var j = 0; j < 10; j++) {"
            "    if (i < 40) t += 1; else t += 2;"
            "  }"
            "}"
            "t;"
        )
        vms = assert_engines_agree(source, ("baseline", "tracing"))
        tracing = vms["tracing"].stats.tracing
        assert tracing.tree_calls_recorded >= 1

    def test_inner_loop_breaks_differently(self):
        source = (
            "var t = 0;"
            "for (var i = 0; i < 60; i++) {"
            "  for (var j = 0; j < 20; j++) {"
            "    if (j > (i & 7)) break;"
            "    t += 1;"
            "  }"
            "}"
            "t;"
        )
        assert_engines_agree(source, ("baseline", "tracing"))

    def test_inner_type_instability_at_runtime(self):
        # The inner accumulator goes double only for later outer
        # iterations: inner guards fail mid-calltree.
        source = (
            "var t = 0;"
            "for (var i = 0; i < 50; i++) {"
            "  var s = 0;"
            "  for (var j = 0; j < 8; j++) s += (i < 30) ? 1 : 0.5;"
            "  t += s;"
            "}"
            "t;"
        )
        assert_engines_agree(source, ("baseline", "tracing"))


class TestCallBoundaryTypes:
    def test_promotion_at_calltree_entry(self):
        # The inner tree is recorded with a double accumulator; later
        # outer iterations reach it with an int — entry promotion.
        source = (
            "function acc(start) {"
            "  var s = start;"
            "  for (var k = 0; k < 8; k++) s += 0.5;"
            "  return s;"
            "}"
            "var t = 0; for (var i = 0; i < 50; i++) t += acc(i); t;"
        )
        assert_engines_agree(source, ("baseline", "tracing"))

    def test_globals_shared_between_trees(self):
        source = (
            "var g = 0;"
            "var t = 0;"
            "for (var i = 0; i < 40; i++) {"
            "  for (var j = 0; j < 8; j++) g = g + 1;"
            "  t += g;"
            "}"
            "t;"
        )
        vms = assert_engines_agree(source, ("baseline", "tracing"))
        assert vms["tracing"].stats.tracing.tree_calls_recorded >= 1

    def test_global_written_by_outer_read_by_inner(self):
        # The regression behind the crc32 bug: the outer trace writes a
        # global that is in the inner tree's import list; the inner must
        # see the buffered write, not the stale vm.globals value.
        source = (
            "var table = new Array(64);"
            "var c = 0;"
            "var k = 0;"
            "for (var n = 0; n < 64; n++) {"
            "    c = n * 3;"
            "    k = 0;"
            "    for (k = 0; k < 5; k++) c = c + 1;"
            "    table[n] = c;"
            "}"
            "var sum = 0;"
            "for (var q = 0; q < 64; q++) sum += table[q];"
            "sum;"
        )
        assert_engines_agree(source, ("baseline", "tracing"))


class TestInnerTreeGrowth:
    def test_inner_grows_new_global_after_outer_compiled(self):
        # Phase 1 compiles outer+inner; phase 2 makes the inner take a
        # new path touching a global the outer never imported.  The
        # runtime ensure-globals fallback in calltree covers it.
        source = (
            "var extra = 7;"
            "var t = 0;"
            "for (var i = 0; i < 80; i++) {"
            "  for (var j = 0; j < 8; j++) {"
            "    if (i > 50) t += extra; else t += 1;"
            "  }"
            "}"
            "t;"
        )
        assert_engines_agree(source, ("baseline", "tracing"))


class TestExceptionsThroughNesting:
    def test_exception_thrown_by_native_inside_inner_loop(self):
        source = (
            "var a = [1, 2, 3];"
            "var r = '';"
            "var t = 0;"
            "try {"
            "  for (var i = 0; i < 60; i++) {"
            "    for (var j = 0; j < 4; j++) {"
            "      var target = (i == 55 && j == 2) ? 0 : a;"
            "      t += target.slice(0).length;"
            "    }"
            "  }"
            "} catch (e) { r = 'caught'; }"
            "r + '|' + t;"
        )
        assert_engines_agree(source, ("baseline", "tracing"))


class TestRecursionRefused:
    def test_self_recursive_loop_aborts_cleanly(self):
        # A function whose loop calls itself: the recorder must not
        # treat the same header at depth > 0 as a loop closure.
        source = (
            "function weird(n) {"
            "  var s = 0;"
            "  for (var i = 0; i < 3; i++) {"
            "    s += n;"
            "    if (n > 0) s += weird(n - 1);"
            "  }"
            "  return s;"
            "}"
            "weird(4) + weird(4);"
        )
        assert_engines_agree(source, ("baseline", "tracing"))
