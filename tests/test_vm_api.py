"""Tests for the public VM API and configuration."""

import pytest

from repro import BaselineVM, ThreadedVM, TracingVM, VM, VMConfig, run_source
from repro.errors import JSLiteSyntaxError


class TestConfigDefaults:
    def test_paper_constants(self):
        config = VMConfig()
        # Section 2: loops become hot "currently after 2 crossings".
        assert config.hotness_threshold == 2
        # Section 3.3: back-off 32, blacklist after 2 failures.
        assert config.blacklist_backoff == 32
        assert config.max_recording_failures == 2

    def test_every_feature_on_by_default(self):
        config = VMConfig()
        for flag in (
            "enable_tracing",
            "enable_nesting",
            "enable_oracle",
            "enable_stitching",
            "enable_blacklisting",
            "enable_cse",
            "enable_exprsimp",
            "enable_dse",
            "enable_dce",
        ):
            assert getattr(config, flag) is True
        assert config.enable_softfloat is False


class TestVMClasses:
    def test_tracing_vm_forces_tracing(self):
        vm = TracingVM(VMConfig(enable_tracing=False))
        assert vm.monitor is not None

    def test_baseline_has_no_monitor(self):
        assert BaselineVM().monitor is None

    def test_threaded_uses_cheap_dispatch(self):
        from repro import costs

        assert ThreadedVM().config.dispatch_cost == costs.DISPATCH_THREADED
        assert BaselineVM().config.dispatch_cost == costs.DISPATCH

    def test_vm_is_reusable(self):
        vm = TracingVM()
        assert vm.run("1;").payload == 1
        assert vm.run("var a = 2; a * 3;").payload == 6
        assert vm.globals["a"].payload == 2  # globals persist

    def test_compile_then_run_code(self):
        vm = BaselineVM()
        code = vm.compile("40 + 2;")
        assert vm.run_code(code).payload == 42

    def test_syntax_errors_propagate(self):
        with pytest.raises(JSLiteSyntaxError):
            BaselineVM().run("var = 1;")

    def test_output_capture(self):
        vm = BaselineVM()
        vm.run("print(1); print('two', 3);")
        assert vm.output == ["1", "two 3"]


class TestRunSource:
    def test_returns_result_and_stats(self):
        result, stats = run_source("var s = 0; for (var i = 0; i < 50; i++) s += i; s;")
        assert result.payload == 1225
        assert stats.tracing.trees_formed >= 1

    def test_accepts_config(self):
        _result, stats = run_source(
            "for (var i = 0; i < 50; i++) ;", VMConfig(hotness_threshold=1000)
        )
        assert stats.tracing.recordings_started == 0


class TestFFIModule:
    def test_typed_signature_validates_types(self):
        from repro.runtime.ffi import TypedSignature, typed

        with pytest.raises(ValueError):
            TypedSignature(("float",), "double", lambda x: x)
        signature = TypedSignature(("double",), "double", lambda x: x * 2)
        assert signature.raw_fn(2.0) == 4.0

        @typed(("double", "double"), "double")
        def add(a, b):
            return a + b

        assert add.param_types == ("double", "double")
        assert add.raw_fn(1.0, 2.0) == 3.0

    def test_custom_typed_native_callable_from_trace(self):
        from repro.runtime.ffi import TypedSignature
        from repro.runtime.objects import NativeFunction
        from repro.runtime.values import make_number, make_object
        from repro.runtime.conversions import to_number

        def boxed(vm, this, args):
            return make_number(to_number(args[0]) * 3.0)

        signature = TypedSignature(("double",), "double", lambda x: x * 3.0)
        vm = TracingVM()
        vm.globals["triple"] = make_object(
            NativeFunction("triple", boxed, signature=signature)
        )
        result = vm.run("var t = 0; for (var i = 0; i < 60; i++) t += triple(i); t;")
        assert result.payload == sum(i * 3 for i in range(60))
        assert vm.stats.profile.fraction_native() > 0.8
