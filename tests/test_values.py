"""Unit + property tests for boxed values (paper Figure 9)."""

import math

import pytest
from hypothesis import given, strategies as st

from repro.errors import VMInternalError
from repro.runtime.values import (
    Box,
    FALSE,
    INT_MAX,
    INT_MIN,
    NULL,
    TAG_BOOLEAN,
    TAG_DOUBLE,
    TAG_INT,
    TAG_NULL,
    TAG_OBJECT,
    TAG_STRING,
    TAG_UNDEFINED,
    TRUE,
    UNDEFINED,
    make_bool,
    make_double,
    make_int,
    make_number,
    make_object,
    make_string,
    type_name,
)
from repro.runtime.objects import JSArray, JSFunction, JSObject


class TestRepresentationChoice:
    def test_small_int_stays_int(self):
        assert make_number(42).tag == TAG_INT

    def test_integral_float_narrows_to_int(self):
        box = make_number(42.0)
        assert box.tag == TAG_INT
        assert box.payload == 42

    def test_fractional_stays_double(self):
        assert make_number(0.5).tag == TAG_DOUBLE

    def test_out_of_range_int_widens(self):
        assert make_number(INT_MAX + 1).tag == TAG_DOUBLE
        assert make_number(INT_MIN - 1).tag == TAG_DOUBLE

    def test_boundaries_stay_int(self):
        assert make_number(INT_MAX).tag == TAG_INT
        assert make_number(INT_MIN).tag == TAG_INT

    def test_negative_zero_stays_double(self):
        box = make_number(-0.0)
        assert box.tag == TAG_DOUBLE
        assert math.copysign(1.0, box.payload) == -1.0

    def test_positive_zero_narrows(self):
        assert make_number(0.0).tag == TAG_INT

    def test_nan_and_inf_are_double(self):
        assert make_number(math.nan).tag == TAG_DOUBLE
        assert make_number(math.inf).tag == TAG_DOUBLE

    def test_make_int_range_checked(self):
        with pytest.raises(VMInternalError):
            make_int(INT_MAX + 1)

    def test_make_number_rejects_bool(self):
        with pytest.raises(VMInternalError):
            make_number(True)


class TestSingletonsAndInterning:
    def test_singletons(self):
        assert make_bool(True) is TRUE
        assert make_bool(False) is FALSE

    def test_small_int_cache(self):
        assert make_number(0) is make_number(0)
        assert make_number(256) is make_number(256)
        assert make_number(-1) is make_number(-1)


class TestEquality:
    def test_int_vs_double_box_differ(self):
        assert make_int(3) != make_double(3.0)

    def test_object_identity(self):
        obj = JSObject()
        assert make_object(obj) == make_object(obj)
        assert make_object(obj) != make_object(JSObject())

    def test_hashable(self):
        assert len({make_number(1), make_number(1), make_string("a")}) == 2


class TestTypeof:
    def test_typeof_strings(self):
        assert type_name(make_number(1)) == "number"
        assert type_name(make_double(1.5)) == "number"
        assert type_name(make_string("x")) == "string"
        assert type_name(TRUE) == "boolean"
        assert type_name(UNDEFINED) == "undefined"
        assert type_name(NULL) == "object"  # the JS quirk
        assert type_name(make_object(JSObject())) == "object"

    def test_typeof_function(self):
        from repro.bytecode.compiler import compile_function

        code = compile_function("f", [], [])
        assert type_name(make_object(JSFunction("f", code))) == "function"


@given(st.integers(min_value=INT_MIN, max_value=INT_MAX))
def test_int_roundtrip(value):
    box = make_number(value)
    assert box.tag == TAG_INT
    assert box.payload == value


@given(st.floats(allow_nan=False))
def test_number_value_preserved(value):
    """Boxing never changes the numeric value (only the representation)."""
    box = make_number(value)
    assert float(box.payload) == value or (box.payload == value)


@given(st.floats())
def test_number_boxing_total(value):
    """make_number accepts every float without raising."""
    box = make_number(value)
    assert box.tag in (TAG_INT, TAG_DOUBLE)
