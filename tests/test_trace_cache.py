"""Tests for the TraceCache subsystem: fragment lifecycle, peer-tree
and branch capacity, code-size accounting, and budget-overflow flushes."""

import json

from repro import TracingVM, VMConfig
from repro.core import events as eventkind
from repro.core.cache import FragmentState, TraceCache
from repro.core.events import EventStream
from tests.helpers import run_baseline, run_tracing

# Two hot function loops driven repeatedly from a hot outer loop: the
# workload keeps re-entering both loops, so after a flush the VM must
# re-trace to stay fast (re-tracing convergence).
TWO_LOOP_DRIVER = """
function f(n) { var s = 0; for (var i = 0; i < n; i++) s += i; return s; }
function g(n) { var s = 0; for (var i = 0; i < n; i++) s += 2; return s; }
var t = 0;
for (var r = 0; r < 15; r++) { t = t + f(40) + g(40); }
t;
"""


def resident_code_size(cache: TraceCache) -> int:
    return sum(tree.code_size_total for tree in cache.all_trees())


class TestFragmentLifecycle:
    def test_linked_after_run(self):
        _r, vm = run_tracing("var s = 0; for (var i = 0; i < 40; i++) s += i; s;")
        trees = vm.monitor.cache.all_trees()
        assert trees
        for tree in trees:
            assert tree.fragment.state is FragmentState.LINKED
            for branch in tree.branches:
                assert branch.state is FragmentState.LINKED

    def test_code_size_accounted(self):
        _r, vm = run_tracing("var s = 0; for (var i = 0; i < 40; i++) s += i; s;")
        cache = vm.monitor.cache
        assert cache.code_size_used > 0
        assert cache.code_size_used == resident_code_size(cache)
        assert cache.code_size_high_water >= cache.code_size_used
        for tree in cache.all_trees():
            assert tree.fragment.code_size > 0

    def test_tree_retire_marks_all_fragments(self):
        _r, vm = run_tracing(
            "var t = 0;"
            "for (var i = 0; i < 60; i++) { if (i % 3 == 0) t += 1; else t += 2; }"
            "t;"
        )
        tree = vm.monitor.cache.all_trees()[0]
        count = 1 + len(tree.branches)
        assert tree.retire() == count
        assert tree.fragment.state is FragmentState.RETIRED
        assert tree.retire() == 0  # idempotent


class TestBudgetFlush:
    def test_budget_overflow_triggers_flush_and_retracing_converges(self):
        base_result, _bvm = run_baseline(TWO_LOOP_DRIVER)
        config = VMConfig(code_cache_budget=300, capture_events=True)
        result, vm = run_tracing(TWO_LOOP_DRIVER, config)
        assert repr(result) == repr(base_result)
        tracing = vm.stats.tracing
        assert tracing.cache_flushes >= 1
        assert tracing.fragments_retired >= 1
        # Re-tracing converged: compilation happened after the first
        # flush, and the cache holds live, linked trees at the end.
        flushes = [e for e in vm.events if e.kind == eventkind.FLUSH]
        compiles = [e for e in vm.events if e.kind == eventkind.COMPILE]
        assert compiles and flushes
        assert max(e.seq for e in compiles) > min(e.seq for e in flushes)
        cache = vm.monitor.cache
        assert cache.tree_count >= 1
        for tree in cache.all_trees():
            assert tree.fragment.state is FragmentState.LINKED

    def test_flush_visible_in_jsonl_event_stream(self):
        config = VMConfig(code_cache_budget=300, capture_events=True)
        _r, vm = run_tracing(TWO_LOOP_DRIVER, config)
        records = [json.loads(line) for line in vm.events.to_jsonl().splitlines()]
        flushes = [r for r in records if r["kind"] == "flush"]
        assert flushes
        assert flushes[0]["reason"] == "budget-overflow"
        assert flushes[0]["budget"] == 300
        assert flushes[0]["fragments"] >= 1

    def test_flush_keeps_triggering_tree(self):
        # The fragment whose registration overflowed the budget survives
        # (its compilation was just paid for).
        config = VMConfig(code_cache_budget=300, capture_events=True)
        _r, vm = run_tracing(TWO_LOOP_DRIVER, config)
        cache = vm.monitor.cache
        assert cache.code_size_used == resident_code_size(cache)
        for record in (
            json.loads(line) for line in vm.events.to_jsonl().splitlines()
        ):
            if record["kind"] == "flush":
                assert record["kept"] is True

    def test_flush_clears_hotness_counters(self):
        config = VMConfig(code_cache_budget=300)
        _r, vm = run_tracing(TWO_LOOP_DRIVER, config)
        # After the last flush, counters restarted from zero; whatever
        # remains is bounded by what post-flush interpretation re-counted.
        cache = vm.monitor.cache
        assert cache.flush_count == vm.stats.tracing.cache_flushes

    def test_unlimited_budget_never_flushes(self):
        _r, vm = run_tracing(TWO_LOOP_DRIVER, VMConfig(code_cache_budget=0))
        assert vm.stats.tracing.cache_flushes == 0

    def test_flush_disabled_overflows_without_flushing(self):
        config = VMConfig(code_cache_budget=300, enable_cache_flush=False)
        result, vm = run_tracing(TWO_LOOP_DRIVER, config)
        assert vm.stats.tracing.cache_flushes == 0
        assert vm.monitor.cache.code_size_used > 300

    def test_retired_stitch_target_not_entered(self):
        # A flush retires branch fragments; stale guards must fall back
        # to the monitor instead of jumping into retired code.
        branchy = (
            "function f(n) {"
            "  var t = 0;"
            "  for (var i = 0; i < n; i++) {"
            "    if (i % 3 == 0) t += 1; else t += 2;"
            "  }"
            "  return t;"
            "}"
            "function g(n) { var s = 0; for (var i = 0; i < n; i++) s += i; return s; }"
            "var t = 0;"
            "for (var r = 0; r < 12; r++) { t = t + f(50) + g(50); }"
            "t;"
        )
        base_result, _bvm = run_baseline(branchy)
        result, vm = run_tracing(branchy, VMConfig(code_cache_budget=500))
        assert repr(result) == repr(base_result)
        assert vm.stats.tracing.cache_flushes >= 1


class TestPeerOverflow:
    SOURCE = (
        "function sum(x) { var s = x; for (var i = 0; i < 40; i++) s += x; "
        "return s; }"
        "sum(1) + sum(0.5) + sum(2) + sum(1.5);"
    )

    def test_peer_overflow_emits_event_and_caps_trees(self):
        config = VMConfig(max_peer_trees=1, capture_events=True)
        _r, vm = run_tracing(self.SOURCE, config)
        assert vm.stats.tracing.peer_overflows >= 1
        assert vm.events.counts.get(eventkind.PEER_OVERFLOW, 0) >= 1
        assert vm.monitor.cache.tree_count <= 1

    def test_peer_overflow_leaks_no_fragments(self):
        config = VMConfig(max_peer_trees=1)
        _r, vm = run_tracing(self.SOURCE, config)
        cache = vm.monitor.cache
        # Accounting covers exactly the resident fragments, and each is
        # linked (refused recordings left nothing half-registered).
        assert cache.code_size_used == resident_code_size(cache)
        for tree in cache.all_trees():
            assert tree.fragment.state is FragmentState.LINKED


class TestBranchCap:
    SOURCE = (
        "var t = 0;"
        "for (var i = 0; i < 200; i++) {"
        "  if (i % 3 == 0) t += 1; else t += 2;"
        "  if (i % 5 == 0) t += 3; else t += 4;"
        "}"
        "t;"
    )

    def test_branch_cap_emits_event_and_respects_cap(self):
        config = VMConfig(max_branch_traces=1, capture_events=True)
        result, vm = run_tracing(self.SOURCE, config)
        base_result, _bvm = run_baseline(self.SOURCE)
        assert repr(result) == repr(base_result)
        assert vm.stats.tracing.branch_caps >= 1
        for tree in vm.monitor.cache.all_trees():
            assert len(tree.branches) <= 1

    def test_branch_cap_leaks_no_fragments(self):
        config = VMConfig(max_branch_traces=1)
        _r, vm = run_tracing(self.SOURCE, config)
        cache = vm.monitor.cache
        assert cache.code_size_used == resident_code_size(cache)
        for tree in cache.all_trees():
            for branch in tree.branches:
                assert branch.state is FragmentState.LINKED


class TestCacheUnit:
    def _cache(self, **overrides):
        config = VMConfig(**overrides)
        return TraceCache(config, EventStream(capture=True))

    def test_hotness_counting(self):
        cache = self._cache()

        class _Code:
            name = "c"

        code = _Code()
        assert cache.bump_hotness(code, 4) == 1
        assert cache.bump_hotness(code, 4) == 2
        assert cache.bump_hotness(code, 8) == 1
        assert cache.hotness(code, 4) == 2

    def test_empty_cache_shape(self):
        cache = self._cache()
        assert cache.tree_count == 0
        assert cache.fragment_count == 0
        assert cache.all_trees() == []
        assert cache.code_size_used == 0
