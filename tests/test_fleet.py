"""The sharded serving fleet: admission, stealing, respawn, chaos.

The fleet's correctness contract is *convergence*: whatever the worker
count, and whatever fleet-level faults fire (worker kills, hangs, lost
steal races), every job's canonical observation — (job_id, status,
result, output) — must equal the 1-worker no-chaos run.  Cycle bills
legitimately differ across shardings (different trace caches), so they
are excluded, exactly like wall-clock.
"""

import pytest

from repro.exec import (
    Fleet,
    Job,
    JobShed,
    ResourceLimits,
    Supervisor,
    TokenBucket,
)
from repro.exec.fleet import (
    SHED_DEADLINE,
    SHED_QUEUE_FULL,
    SHED_RATE,
    STATUS_SHED,
    STATUS_WORKER_LOST,
)
from repro.hardening import FLEET_FAULT_SITES, FaultPlan

HOT_LOOP = "var s = 0; for (var i = 0; i < 250; i = i + 1) { s = s + i; } s;"


def mixed_jobs(count=12):
    """A deterministic mixed workload across three tenants."""
    jobs = []
    for i in range(count):
        jobs.append(
            Job(
                job_id=f"j{i:02d}",
                source=f"var s = 0; for (var i = 0; i < 120; i = i + 1) "
                       f"{{ s = s + i + {i % 4}; }} s;",
                tenant=f"tenant-{i % 3}",
            )
        )
    return jobs


def canonical(results):
    return [(r.job_id, r.status, r.result, r.output) for r in results]


class TestTokenBucket:
    def test_burst_then_refill(self):
        now = [0.0]
        bucket = TokenBucket(rate=2.0, clock=lambda: now[0])
        assert bucket.try_take()
        assert bucket.try_take()
        assert not bucket.try_take()  # burst (= rate) exhausted
        now[0] += 0.5  # half a second refills one token at 2/sec
        assert bucket.try_take()
        assert not bucket.try_take()

    def test_burst_never_exceeds_cap(self):
        now = [0.0]
        bucket = TokenBucket(rate=1.0, clock=lambda: now[0])
        now[0] += 100.0
        assert bucket.try_take()
        assert not bucket.try_take()  # capped at burst=1, not 100

    def test_rejects_nonpositive_rate(self):
        with pytest.raises(ValueError):
            TokenBucket(rate=0)


class TestFleetBasics:
    def test_runs_batch_in_submission_order(self):
        jobs = mixed_jobs(9)
        with Fleet(workers=3) as fleet:
            results = fleet.run(jobs)
        assert [r.job_id for r in results] == [j.job_id for j in jobs]
        assert all(r.status == "ok" for r in results)

    def test_matches_single_vm_supervisor(self):
        jobs = mixed_jobs(8)
        sup = Supervisor()
        expected = sorted(canonical(sup.run(mixed_jobs(8))))
        with Fleet(workers=2) as fleet:
            got = sorted(canonical(fleet.run(jobs)))
        assert got == expected

    def test_reusable_across_batches(self):
        with Fleet(workers=2) as fleet:
            first = fleet.run(mixed_jobs(4))
            second = fleet.run(mixed_jobs(4))
        assert canonical(first) == canonical(second)

    def test_routing_affinity(self):
        with Fleet(workers=3) as fleet:
            fleet.start()
            with fleet._cond:
                # Tenant affinity is sticky...
                first = fleet._route_locked(Job("a", "src1", tenant="t1"))
                again = fleet._route_locked(Job("b", "src1", tenant="t1"))
                assert first is again
                # ...new tenants balance onto other workers...
                other = fleet._route_locked(Job("c", "src2", tenant="t2"))
                assert other is not first
                # ...and a worker holding the compiled source wins even
                # over another tenant's stickiness (its trace cache has
                # the loops).
                first.supervisor._codes["src3"] = object()
                winner = fleet._route_locked(Job("d", "src3", tenant="t2"))
                assert winner is first

    def test_fleet_wide_tenant_summary(self):
        jobs = mixed_jobs(9)
        with Fleet(workers=3) as fleet:
            fleet.run(jobs)
            summary = fleet.tenant_summary()
        assert sorted(summary) == ["tenant-0", "tenant-1", "tenant-2"]
        assert all(usage.jobs == 3 and usage.ok == 3
                   for usage in summary.values())

    def test_worker_vm_configs_are_not_shared(self):
        from repro.vm import VMConfig

        config = VMConfig()
        with Fleet(workers=3, config=config) as fleet:
            configs = {id(w.supervisor.vm.config) for w in fleet.workers}
        assert len(configs) == 3


class TestAdmission:
    def test_rate_limit_sheds_typed_result(self):
        now = [100.0]
        jobs = [Job(f"s{i}", "1 + 1;", tenant="spammy") for i in range(5)]
        with Fleet(workers=2, rates={"spammy": 2.0},
                   clock=lambda: now[0], capture_events=True) as fleet:
            results = fleet.run(jobs)
        shed = [r for r in results if r.status == STATUS_SHED]
        assert len(shed) == 3  # burst of 2 admitted, frozen clock: no refill
        for result in shed:
            assert isinstance(result, JobShed)
            assert result.reason == SHED_RATE
            assert result.fault == "shed: rate"
            assert result.attempts == 0
        assert fleet.counts()["job-shed"] == 3

    def test_rate_limit_is_per_tenant(self):
        now = [100.0]
        jobs = [Job("a", "1;", tenant="limited"),
                Job("b", "2;", tenant="limited"),
                Job("c", "3;", tenant="free")]
        with Fleet(workers=1, rates={"limited": 1.0},
                   clock=lambda: now[0]) as fleet:
            results = fleet.run(jobs)
        assert [r.status for r in results] == ["ok", STATUS_SHED, "ok"]

    def test_bounded_queue_sheds_overflow(self):
        jobs = [Job(f"q{i}", HOT_LOOP + f" s + {i};") for i in range(8)]
        with Fleet(workers=1, shed_after=3, capture_events=True) as fleet:
            results = fleet.run(jobs)
        reasons = [getattr(r, "reason", None) for r in results]
        assert reasons.count(SHED_QUEUE_FULL) == len(jobs) - 3
        # Shedding produced typed results, not tracebacks, and the
        # admitted jobs all completed.
        assert all(r.status in ("ok", STATUS_SHED) for r in results)

    def test_deadline_shed_at_admission(self):
        now = [50.0]
        jobs = [Job("late", "1;", not_after=49.0),
                Job("fine", "2;", not_after=51.0)]
        with Fleet(workers=1, clock=lambda: now[0]) as fleet:
            results = fleet.run(jobs)
        assert results[0].status == STATUS_SHED
        assert results[0].reason == SHED_DEADLINE
        assert results[1].status == "ok"

    def test_deadline_shed_at_dequeue_not_run(self):
        # The deadline passes while the job waits behind a long one: it
        # must be shed at dequeue, never started.
        now = [0.0]

        class TickingClock:
            def __call__(self):
                now[0] += 0.25  # every observation advances time
                return now[0]

        jobs = [Job("long", HOT_LOOP),
                Job("stale", "1;", not_after=0.5)]
        with Fleet(workers=1, clock=TickingClock(),
                   capture_events=True) as fleet:
            results = fleet.run(jobs)
        assert results[0].status == "ok"
        assert results[1].status == STATUS_SHED
        assert results[1].reason == SHED_DEADLINE

    def test_sheds_never_reach_a_worker(self):
        now = [100.0]
        jobs = [Job(f"s{i}", "1 + 1;", tenant="spammy") for i in range(4)]
        with Fleet(workers=1, rates={"spammy": 1.0},
                   clock=lambda: now[0]) as fleet:
            fleet.run(jobs)
            summary = fleet.tenant_summary()
        usage = summary["spammy"]
        assert usage.jobs == 4 and usage.ok == 1 and usage.faulted == 3
        assert usage.cycles > 0  # only the admitted job billed cycles


class TestWorkStealing:
    def test_idle_workers_steal_from_longest_queue(self):
        # Route everything to one tenant (one worker) and watch the
        # other workers steal the backlog.
        jobs = [Job(f"h{i}", HOT_LOOP + f" s + {i};", tenant="hot")
                for i in range(8)]
        with Fleet(workers=3, capture_events=True) as fleet:
            results = fleet.run(jobs)
        assert all(r.status == "ok" for r in results)
        assert fleet.counts().get("work-stolen", 0) > 0

    def test_cache_protected_thief_declines_cold_steals(self):
        # One steal into a warm cache can cost a budget-overflow flush
        # of the thief's whole working set, so a thief warm past a
        # quarter of its budget only steals work it already holds
        # compiled.  Here the "mine" worker warms up (HOT_LOOP is 88
        # simulated bytes > 300 // 4), then idles while the other
        # worker grinds a backlog it would love to give away — and
        # steals nothing.
        from repro.vm import VMConfig

        config = VMConfig(code_cache_budget=300)
        jobs = ([Job("warm-thief", HOT_LOOP, tenant="mine")]
                + [Job(f"backlog{i}", HOT_LOOP + f" s + {i};", tenant="hot")
                   for i in range(8)])
        with Fleet(workers=2, config=config, capture_events=True) as fleet:
            results = fleet.run(jobs)
        assert all(r.status == "ok" for r in results)
        assert fleet.counts().get("work-stolen", 0) == 0

    def test_warm_source_tracks_trace_cache_not_parse_cache(self):
        from repro.vm import VMConfig

        sup = Supervisor(config=VMConfig())
        assert not sup.warm_source(HOT_LOOP)
        sup.run_attempt(Job("a", HOT_LOOP), 1)
        assert sup.warm_source(HOT_LOOP)
        sup.vm.monitor.cache.flush("test")
        assert HOT_LOOP in sup._codes      # parse cache survives...
        assert not sup.warm_source(HOT_LOOP)  # ...trace warmth does not

    def test_lost_steal_race_leaves_victim_queue_intact(self):
        jobs = [Job(f"h{i}", HOT_LOOP + f" s + {i};", tenant="hot")
                for i in range(6)]
        plan = FaultPlan({"fleet.steal_race": "*"})
        with Fleet(workers=3, fault_plan=plan,
                   capture_events=True) as fleet:
            results = fleet.run(jobs)
        assert all(r.status == "ok" for r in results)
        # Every steal attempt lost its race: no work-stolen events.
        assert fleet.counts().get("work-stolen", 0) == 0
        assert fleet.counts().get("fault-injected", 0) > 0


class TestWorkerFaultTolerance:
    def test_crash_respawns_and_resubmits(self):
        jobs = mixed_jobs(6)
        plan = FaultPlan({"fleet.worker_crash": 1})
        with Fleet(workers=2, fault_plan=plan,
                   capture_events=True) as fleet:
            results = fleet.run(jobs)
            counts = fleet.counts()
            live = fleet.workers
        assert all(r.status == "ok" for r in results)
        assert counts["worker-respawn"] == 1
        assert counts["worker-online"] == 3  # 2 spawns + 1 respawn
        assert len(live) == 2
        # The replacement got a fresh id and a fresh VM.
        assert {w.worker_id for w in live} != {0, 1}

    def test_hang_watchdog_replaces_wedged_worker(self):
        jobs = mixed_jobs(6)
        plan = FaultPlan({"fleet.worker_hang": 1})
        with Fleet(workers=2, hang_timeout=0.05, fault_plan=plan,
                   capture_events=True) as fleet:
            results = fleet.run(jobs)
            counts = fleet.counts()
        assert all(r.status == "ok" for r in results)
        assert counts["worker-respawn"] == 1
        respawns = fleet.events.of_kind("worker-respawn")
        assert respawns[0].payload["reason"] == "hang"

    def test_repeated_crashes_exhaust_to_worker_lost(self):
        # The crash site fires on *every* hit: the job can never run,
        # and after max_requeues resubmissions it is reported lost —
        # a typed result, not a hang or a traceback.
        plan = FaultPlan({"fleet.worker_crash": "*"})
        with Fleet(workers=1, max_requeues=2, fault_plan=plan,
                   capture_events=True) as fleet:
            results = fleet.run([Job("doomed", "1 + 1;")])
            counts = fleet.counts()
        assert results[0].status == STATUS_WORKER_LOST
        assert "max_requeues=2" in results[0].fault
        assert counts["worker-respawn"] == 3  # initial + 2 resubmits
        summary = fleet.tenant_summary()
        assert summary["default"].faulted == 1

    def test_real_exception_in_attempt_is_a_crash(self):
        # A non-injected internal error escaping an attempt must also
        # respawn the worker and resubmit, not deadlock the batch.
        with Fleet(workers=1, capture_events=True) as fleet:
            fleet.start()
            worker = fleet.workers[0]
            real = worker.supervisor.run_attempt
            calls = {"n": 0}

            def flaky_attempt(job, attempt):
                calls["n"] += 1
                if calls["n"] == 1:
                    raise RuntimeError("host bug")
                return real(job, attempt)

            worker.supervisor.run_attempt = flaky_attempt
            results = fleet.run([Job("survivor", "6 * 7;")])
        assert results[0].status == "ok"
        assert results[0].result == "42"
        assert fleet.counts()["worker-respawn"] == 1


class TestFleetChaosConvergence:
    """The CI fleet-soak contract: any fleet fault converges to the
    1-worker no-chaos per-job results."""

    @pytest.fixture(scope="class")
    def baseline(self):
        with Fleet(workers=1) as fleet:
            return canonical(fleet.run(mixed_jobs()))

    @pytest.mark.parametrize("site", FLEET_FAULT_SITES)
    def test_single_fault_converges(self, site, baseline):
        with Fleet(workers=3, hang_timeout=0.05,
                   fault_plan=FaultPlan({site: 1})) as fleet:
            got = canonical(fleet.run(mixed_jobs()))
        assert got == baseline

    def test_combined_chaos_converges(self, baseline):
        plan = FaultPlan({
            "fleet.worker_crash": 1,
            "fleet.worker_hang": 2,
            "fleet.steal_race": 1,
        })
        with Fleet(workers=4, hang_timeout=0.05, fault_plan=plan,
                   capture_events=True) as fleet:
            got = canonical(fleet.run(mixed_jobs()))
        assert got == baseline
        assert fleet.counts()["worker-respawn"] >= 2

    @pytest.mark.parametrize("workers", [2, 3, 4])
    def test_worker_counts_converge(self, workers, baseline):
        with Fleet(workers=workers) as fleet:
            got = canonical(fleet.run(mixed_jobs()))
        assert got == baseline


class TestFleetObservability:
    def test_metrics_registry_folds_fleet_events(self):
        now = [100.0]
        jobs = [Job(f"s{i}", "1 + 1;", tenant="spammy") for i in range(4)]
        plan = FaultPlan({"fleet.worker_crash": 1})
        with Fleet(workers=2, rates={"spammy": 1.0}, clock=lambda: now[0],
                   fault_plan=plan, capture_metrics=True,
                   capture_events=True) as fleet:
            fleet.run(jobs)
            metrics = fleet.metrics
        assert metrics.fleet_sheds.value(tenant="spammy", reason="rate") == 3
        assert metrics.fleet_respawns.value(reason="crash") == 1
        assert metrics.fleet_workers.value() == 2

    def test_span_recorder_exports_worker_lanes(self):
        from repro.obs.validate import validate_chrome_trace

        with Fleet(workers=2, capture_spans=True) as fleet:
            fleet.run(mixed_jobs(4))
            doc = fleet.spans.to_chrome_trace(program="test-fleet")
        validate_chrome_trace(doc)
        lanes = {
            entry["args"]["name"]
            for entry in doc["traceEvents"]
            if entry.get("ph") == "M" and entry["name"] == "thread_name"
        }
        assert {"admission", "events", "worker-0", "worker-1"} <= lanes
        job_spans = [e for e in doc["traceEvents"] if e.get("ph") == "X"]
        assert len(job_spans) == 4

    def test_events_jsonl_round_trips_schema_v6(self, tmp_path):
        from repro.obs.validate import validate_events_jsonl

        plan = FaultPlan({"fleet.worker_crash": 1})
        with Fleet(workers=2, fault_plan=plan,
                   capture_events=True) as fleet:
            fleet.run(mixed_jobs(4))
            path = tmp_path / "fleet-events.jsonl"
            fleet.events.write_jsonl(str(path))
        count = validate_events_jsonl(path.read_text())
        assert count >= 4  # worker-onlines + fault + respawn at minimum

    def test_clean_run_still_emits_events(self):
        # worker-online per spawn guarantees the fleet JSONL artifact is
        # never empty, which validate_events_jsonl requires.
        with Fleet(workers=2, capture_events=True) as fleet:
            fleet.run(mixed_jobs(2))
            assert len(fleet.events) >= 2


class TestFleetRetryDiscipline:
    def test_cache_pressure_retry_rides_the_fleet_queue(self):
        from repro.vm import VMConfig

        config = VMConfig(code_cache_budget=400)
        limits = ResourceLimits(deadline_cycles=150_000)
        nested = (
            "var total = 0;"
            "for (var i = 0; i < 200; i = i + 1) {"
            "  for (var j = 0; j < 40; j = j + 1) { total = total + j; }"
            "  var s = ''; for (var k = 0; k < 4; k = k + 1) { s = s + 'x'; }"
            "}"
            "total;"
        )
        with Fleet(workers=1, config=config, limits=limits, max_retries=2,
                   capture_events=True) as fleet:
            result = fleet.run([Job("pressured", nested)])[0]
        if result.attempts > 1:
            retried = fleet.events.of_kind("job-retried")
            assert retried and retried[0].payload["job"] == "pressured"
            assert retried[0].payload["backoff"] >= 1
        else:
            assert result.status in ("ok", "timeout")
