"""Unit + property tests for ECMA conversions."""

import math

from hypothesis import given, strategies as st

from repro.runtime import conversions
from repro.runtime.values import (
    FALSE,
    NULL,
    TRUE,
    UNDEFINED,
    make_double,
    make_number,
    make_object,
    make_string,
)
from repro.runtime.objects import JSArray, JSObject


class TestToBoolean:
    def test_falsy(self):
        for box in (
            make_number(0),
            make_double(-0.0),
            make_double(math.nan),
            make_string(""),
            NULL,
            UNDEFINED,
            FALSE,
        ):
            assert not conversions.to_boolean(box)

    def test_truthy(self):
        for box in (
            make_number(1),
            make_number(-1),
            make_double(0.5),
            make_string("0"),
            make_object(JSObject()),
            TRUE,
        ):
            assert conversions.to_boolean(box)


class TestToNumber:
    def test_primitives(self):
        assert conversions.to_number(make_number(3)) == 3
        assert conversions.to_number(TRUE) == 1
        assert conversions.to_number(FALSE) == 0
        assert conversions.to_number(NULL) == 0
        assert math.isnan(conversions.to_number(UNDEFINED))

    def test_strings(self):
        assert conversions.to_number(make_string("42")) == 42
        assert conversions.to_number(make_string("  3.5 ")) == 3.5
        assert conversions.to_number(make_string("")) == 0
        assert conversions.to_number(make_string("0x10")) == 16
        assert conversions.to_number(make_string("1e2")) == 100.0
        assert math.isnan(conversions.to_number(make_string("abc")))
        assert conversions.to_number(make_string("Infinity")) == math.inf
        assert conversions.to_number(make_string("-Infinity")) == -math.inf


class TestToInt32:
    def test_wrapping(self):
        assert conversions.to_int32(2**31) == -(2**31)
        assert conversions.to_int32(2**32) == 0
        assert conversions.to_int32(-(2**31) - 1) == 2**31 - 1

    def test_truncation_toward_zero(self):
        assert conversions.to_int32(3.7) == 3
        assert conversions.to_int32(-3.7) == -3

    def test_special_values(self):
        assert conversions.to_int32(math.nan) == 0
        assert conversions.to_int32(math.inf) == 0
        assert conversions.to_int32(-math.inf) == 0

    def test_uint32(self):
        assert conversions.to_uint32(-1) == 2**32 - 1
        assert conversions.to_uint32(2**32 + 5) == 5


class TestToString:
    def test_numbers(self):
        assert conversions.to_string(make_number(3)) == "3"
        assert conversions.to_string(make_double(3.5)) == "3.5"
        assert conversions.to_string(make_double(math.nan)) == "NaN"
        assert conversions.to_string(make_double(math.inf)) == "Infinity"
        assert conversions.to_string(make_double(4.0)) == "4"

    def test_specials(self):
        assert conversions.to_string(NULL) == "null"
        assert conversions.to_string(UNDEFINED) == "undefined"
        assert conversions.to_string(TRUE) == "true"

    def test_array_joins_like_js(self):
        arr = JSArray()
        arr.set_element(0, make_number(1))
        arr.set_element(1, NULL)
        arr.set_element(2, make_string("x"))
        assert conversions.to_string(make_object(arr)) == "1,,x"

    def test_plain_object(self):
        assert conversions.to_string(make_object(JSObject())) == "[object Object]"


@given(st.integers(min_value=-(2**40), max_value=2**40))
def test_to_int32_matches_ecma_formula(value):
    result = conversions.to_int32(value)
    assert -(2**31) <= result <= 2**31 - 1
    assert (result - value) % (2**32) == 0


@given(st.floats(allow_nan=False, allow_infinity=False, min_value=-1e15, max_value=1e15))
def test_to_int32_float_matches_int_of_trunc(value):
    assert conversions.to_int32(value) == conversions.to_int32(int(value))


@given(st.integers(min_value=-(2**40), max_value=2**40))
def test_uint32_range(value):
    result = conversions.to_uint32(value)
    assert 0 <= result < 2**32
    assert (result - value) % (2**32) == 0
