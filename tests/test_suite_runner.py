"""Tests for the suite runner and its figure tables."""

import math

import pytest

from repro.suite.programs import PROGRAMS, BenchmarkProgram, program_named, programs_by_category
from repro.suite.runner import (
    figure10_table,
    figure11_table,
    figure12_table,
    format_figure10,
    format_figure11,
    format_figure12,
    run_program,
    run_suite,
)

SMALL = [program_named("bitops-bitwise-and"), program_named("controlflow-recursive")]


@pytest.fixture(scope="module")
def small_results():
    return run_suite(programs=SMALL)


class TestPrograms:
    def test_suite_size_matches_sunspider_scale(self):
        # SunSpider has 26 programs; we carry 25 in the same categories.
        assert len(PROGRAMS) == 25

    def test_unique_names(self):
        names = [program.name for program in PROGRAMS]
        assert len(set(names)) == len(names)

    def test_categories_cover_sunspider(self):
        categories = set(programs_by_category())
        assert {"bitops", "math", "3d", "access", "crypto", "string",
                "controlflow", "date"} <= categories

    def test_exactly_three_untraceable(self):
        assert sum(1 for p in PROGRAMS if not p.expected_traceable) == 3

    def test_program_named_raises_for_unknown(self):
        with pytest.raises(KeyError):
            program_named("not-a-benchmark")


class TestRunner:
    def test_run_program_engines(self):
        program = program_named("bitops-bitwise-and")
        results = {
            engine: run_program(program, engine)
            for engine in ("baseline", "threaded", "methodjit", "tracing")
        }
        reprs = {result.result_repr for result in results.values()}
        assert len(reprs) == 1
        assert results["tracing"].cycles < results["baseline"].cycles

    def test_run_program_with_config(self):
        from repro.vm import VMConfig

        program = program_named("bitops-bitwise-and")
        result = run_program(program, "tracing", VMConfig(enable_tracing=True))
        assert result.stats.tracing.trees_formed >= 1

    def test_run_suite_structure(self, small_results):
        assert set(small_results) == {program.name for program in SMALL}
        for row in small_results.values():
            assert set(row) == {"baseline", "threaded", "methodjit", "tracing"}


class TestTables:
    def test_figure10_rows(self, small_results):
        rows = figure10_table(small_results)
        assert len(rows) == len(SMALL)
        for row in rows:
            for engine in ("tracing", "threaded", "methodjit"):
                assert row[engine] > 0
        text = format_figure10(rows)
        assert "bitops-bitwise-and" in text
        assert "x" in text

    def test_figure11_rows(self, small_results):
        rows = figure11_table(small_results)
        for row in rows:
            total = row["native"] + row["interpreted"] + row["recorded"]
            assert math.isclose(total, 1.0, abs_tol=1e-9)
        text = format_figure11(rows)
        assert "%" in text

    def test_figure12_rows(self, small_results):
        rows = figure12_table(small_results)
        for row in rows:
            fractions = [row[key] for key in
                         ("native", "interpret", "monitor", "record", "compile")]
            assert math.isclose(sum(fractions), 1.0, abs_tol=1e-9)
        format_figure12(rows)  # must not raise
