"""Unit + property tests for the generic boxed operations.

These are the single source of operator semantics shared by the
interpreter, the call-threaded baseline, and the method JIT, so they
get their own exhaustive coverage.
"""

import math

from hypothesis import given, strategies as st

from repro.runtime import operations
from repro.runtime.conversions import to_int32
from repro.runtime.values import (
    FALSE,
    NULL,
    TRUE,
    UNDEFINED,
    INT_MAX,
    INT_MIN,
    TAG_DOUBLE,
    TAG_INT,
    make_double,
    make_number,
    make_object,
    make_string,
)
from repro.runtime.objects import JSObject

small_ints = st.integers(min_value=-(2**20), max_value=2**20)
int32s = st.integers(min_value=-(2**31), max_value=2**31 - 1)


def num(value):
    return make_number(value)


class TestAdd:
    def test_int_add(self):
        box, _cost = operations.add(num(2), num(3))
        assert box.payload == 5

    def test_int_overflow_widens(self):
        box, _cost = operations.add(num(INT_MAX), num(1))
        assert box.tag == TAG_DOUBLE

    def test_string_concat(self):
        box, _cost = operations.add(make_string("a"), make_string("b"))
        assert box.payload == "ab"

    def test_number_plus_string(self):
        box, _cost = operations.add(num(1), make_string("x"))
        assert box.payload == "1x"

    def test_undefined_plus_number_is_nan(self):
        box, _cost = operations.add(UNDEFINED, num(1))
        assert math.isnan(box.payload)

    def test_bool_coerces(self):
        box, _cost = operations.add(TRUE, num(1))
        assert box.payload == 2


class TestDiv:
    def test_exact_int_division(self):
        box, _cost = operations.div(num(6), num(3))
        assert box.tag == TAG_INT
        assert box.payload == 2

    def test_fractional(self):
        box, _cost = operations.div(num(1), num(2))
        assert box.payload == 0.5

    def test_division_by_zero(self):
        assert operations.div(num(1), num(0))[0].payload == math.inf
        assert operations.div(num(-1), num(0))[0].payload == -math.inf
        assert math.isnan(operations.div(num(0), num(0))[0].payload)


class TestMod:
    def test_sign_follows_dividend(self):
        assert operations.mod(num(5), num(3))[0].payload == 2
        assert operations.mod(num(-5), num(3))[0].payload == -2
        assert operations.mod(num(5), num(-3))[0].payload == 2

    def test_mod_zero_is_nan(self):
        assert math.isnan(operations.mod(num(1), num(0))[0].payload)

    def test_negative_dividend_zero_result_is_minus_zero(self):
        # ECMA: -3 % 3 is -0 (a double), so 1 / (-3 % 3) is -Infinity.
        box, _cost = operations.mod(num(-3), num(3))
        assert box.tag == TAG_DOUBLE
        assert math.copysign(1.0, box.payload) == -1.0

    def test_positive_dividend_zero_result_stays_int(self):
        box, _cost = operations.mod(num(6), num(3))
        assert box.tag == TAG_INT

    def test_float_mod(self):
        assert operations.mod(num(5.5), num(2))[0].payload == 1.5


class TestNeg:
    def test_neg_int(self):
        assert operations.neg(num(5))[0].payload == -5

    def test_neg_zero_is_double(self):
        box, _cost = operations.neg(num(0))
        assert box.tag == TAG_DOUBLE
        assert math.copysign(1.0, box.payload) == -1.0


class TestBitwise:
    def test_basic(self):
        assert operations.bitand(num(12), num(10))[0].payload == 8
        assert operations.bitor(num(12), num(10))[0].payload == 14
        assert operations.bitxor(num(12), num(10))[0].payload == 6
        assert operations.bitnot(num(0))[0].payload == -1

    def test_shifts(self):
        assert operations.shl(num(1), num(4))[0].payload == 16
        assert operations.shr(num(-8), num(1))[0].payload == -4
        assert operations.ushr(num(-1), num(28))[0].payload == 15

    def test_shift_count_masked_to_5_bits(self):
        assert operations.shl(num(1), num(33))[0].payload == 2

    def test_double_operand_truncated(self):
        assert operations.bitand(make_double(5.9), num(3))[0].payload == 1

    def test_nan_operand_is_zero(self):
        assert operations.bitor(make_double(math.nan), num(5))[0].payload == 5


class TestCompare:
    def test_numeric(self):
        assert operations.compare(num(1), num(2), "<")[0].payload is True
        assert operations.compare(num(2), num(2), "<=")[0].payload is True
        assert operations.compare(num(3), num(2), ">")[0].payload is True

    def test_nan_always_false(self):
        nan = make_double(math.nan)
        for op in ("<", "<=", ">", ">="):
            assert operations.compare(nan, num(1), op)[0].payload is False

    def test_string_comparison(self):
        left, right = make_string("apple"), make_string("banana")
        assert operations.compare(left, right, "<")[0].payload is True


class TestEquality:
    def test_loose_null_undefined(self):
        assert operations.loose_equals(NULL, UNDEFINED)
        assert not operations.loose_equals(NULL, num(0))

    def test_loose_number_string(self):
        assert operations.loose_equals(num(5), make_string("5"))

    def test_loose_bool(self):
        assert operations.loose_equals(TRUE, num(1))

    def test_strict_type_sensitive(self):
        assert not operations.strict_equals(num(1), TRUE)
        assert not operations.strict_equals(NULL, UNDEFINED)
        assert operations.strict_equals(num(1), make_double(1.0))

    def test_nan_never_equals(self):
        nan = make_double(math.nan)
        assert not operations.strict_equals(nan, nan)
        assert not operations.loose_equals(nan, nan)

    def test_object_identity(self):
        obj = make_object(JSObject())
        assert operations.strict_equals(obj, obj)
        assert not operations.strict_equals(obj, make_object(JSObject()))


# -- property tests ---------------------------------------------------------


@given(small_ints, small_ints)
def test_int_arith_matches_python(a, b):
    assert operations.add(num(a), num(b))[0].payload == a + b
    assert operations.sub(num(a), num(b))[0].payload == a - b
    assert operations.mul(num(a), num(b))[0].payload == a * b


@given(int32s, int32s)
def test_bitand_matches_int32_semantics(a, b):
    assert operations.bitand(num(a), num(b))[0].payload == to_int32(a & b)
    assert operations.bitxor(num(a), num(b))[0].payload == to_int32(a ^ b)
    assert operations.bitor(num(a), num(b))[0].payload == to_int32(a | b)


@given(int32s, st.integers(min_value=0, max_value=31))
def test_shifts_stay_in_int32(a, k):
    assert -(2**31) <= operations.shl(num(a), num(k))[0].payload <= 2**31 - 1
    assert 0 <= operations.ushr(num(a), num(k))[0].payload < 2**32


@given(st.floats(allow_nan=False, allow_infinity=False), st.floats(allow_nan=False, allow_infinity=False))
def test_compare_is_consistent_with_python(a, b):
    assert operations.compare(num(a), num(b), "<")[0].payload == (a < b)


@given(small_ints, small_ints)
def test_equality_reflexive_and_symmetric(a, b):
    assert operations.strict_equals(num(a), num(a))
    assert operations.strict_equals(num(a), num(b)) == operations.strict_equals(
        num(b), num(a)
    )


@given(st.integers(min_value=-(2**35), max_value=2**35), st.integers(min_value=-(2**35), max_value=2**35))
def test_costs_are_positive(a, b):
    for operation in (operations.add, operations.sub, operations.mul,
                      operations.div, operations.mod, operations.bitand):
        _box, cost = operation(num(a), num(b))
        assert cost > 0
