"""Tests for the trace monitor: hotness, the trace cache, peer trees,
exit handling, and cross-loop behaviour."""

from repro import TracingVM, VMConfig
from tests.helpers import run_tracing


class TestHotness:
    def test_cold_loop_never_recorded(self):
        # A loop body that never runs crosses the header only once.
        _r, vm = run_tracing("for (var i = 0; i < 0; i++) ;")
        assert vm.stats.tracing.recordings_started == 0

    def test_loop_becomes_hot_at_threshold(self):
        # Threshold 2: the second header execution starts recording
        # (paper Section 2: "the second crossing occurs immediately
        # after the first iteration").
        _r, vm = run_tracing("for (var i = 0; i < 3; i++) ;")
        assert vm.stats.tracing.recordings_started == 1

    def test_custom_threshold(self):
        _r, vm = run_tracing(
            "for (var i = 0; i < 6; i++) ;", VMConfig(hotness_threshold=10)
        )
        assert vm.stats.tracing.recordings_started == 0


class TestTraceCache:
    def test_separate_loops_get_separate_trees(self):
        _r, vm = run_tracing(
            "var s = 0;"
            "for (var i = 0; i < 30; i++) s += i;"
            "for (var j = 0; j < 30; j++) s -= j;"
            "s;"
        )
        assert vm.stats.tracing.trees_formed == 2

    def test_same_code_reused_across_calls(self):
        # One loop in a function called twice: a single tree serves both.
        _r, vm = run_tracing(
            "function sum(n) { var s = 0; for (var i = 0; i < n; i++) s += i; return s; }"
            "sum(40) + sum(40);"
        )
        assert vm.stats.tracing.trees_formed == 1
        assert vm.stats.tracing.trace_entries >= 2

    def test_peer_trees_by_typemap(self):
        # The same loop entered with int and with double arguments
        # needs two type-specialized trees (peers).
        _r, vm = run_tracing(
            "function sum(x) { var s = x; for (var i = 0; i < 40; i++) s += x; return s; }"
            "sum(1) + sum(0.5);"
        )
        assert vm.stats.tracing.trees_formed == 2

    def test_max_peer_trees_capped(self):
        config = VMConfig(max_peer_trees=1)
        _r, vm = run_tracing(
            "function sum(x) { var s = x; for (var i = 0; i < 40; i++) s += x; return s; }"
            "sum(1) + sum(0.5) + sum('a').length;",
            config,
        )
        assert vm.stats.tracing.trees_formed <= 1


class TestMonitorCosts:
    def test_monitor_time_small_for_hot_loops(self):
        # Section 6.3: "the total time spent in the monitor is usually
        # less than 5%".
        _r, vm = run_tracing("var s = 0; for (var i = 0; i < 5000; i++) s += i; s;")
        assert vm.stats.time_breakdown()["monitor"] < 0.05

    def test_native_dominates_hot_loops(self):
        _r, vm = run_tracing("var s = 0; for (var i = 0; i < 5000; i++) s += i; s;")
        assert vm.stats.time_breakdown()["native"] > 0.5


class TestGlobalSlots:
    def test_global_slots_are_vm_wide(self):
        vm = TracingVM()
        vm.run("var x = 0; for (var i = 0; i < 30; i++) x += i;")
        slot_first = vm.monitor.global_slot("x")
        vm.run("for (var j = 0; j < 30; j++) x += j;")
        assert vm.monitor.global_slot("x") == slot_first

    def test_global_names_registry(self):
        vm = TracingVM()
        slot = vm.monitor.global_slot("alpha")
        assert vm.monitor.global_names[slot] == "alpha"


class TestVMReuse:
    def test_second_run_reuses_compiled_traces(self):
        vm = TracingVM()
        vm.run("var s = 0; for (var i = 0; i < 50; i++) s += i;")
        recordings_first = vm.stats.tracing.recordings_started
        code = vm.compile("var t = 0; for (var i = 0; i < 50; i++) t += i;")
        vm.run_code(code)
        vm.run_code(code)  # same Code object: the tree is cached
        assert vm.stats.tracing.recordings_started <= recordings_first + 2

    def test_run_after_exception_recovers(self):
        import pytest

        from repro.errors import JSThrow

        vm = TracingVM()
        with pytest.raises(JSThrow):
            vm.run("throw 'x';")
        assert vm.run("1 + 1;").payload == 2
        assert vm.recorder is None
