"""Unit tests for the forward filter pipeline (paper Section 5.1)."""

from repro.core.lir import LIns
from repro.jit.pipeline import ForwardPipeline
from repro.vm import VMConfig


def make_pipeline(**overrides):
    config = VMConfig(**overrides)
    return ForwardPipeline(config)


def const_i(pipe, value):
    return pipe.emit(LIns("const", imm=value, type="i"))


def const_d(pipe, value):
    return pipe.emit(LIns("const", imm=value, type="d"))


class TestConstantFolding:
    def test_int_fold(self):
        pipe = make_pipeline()
        result = pipe.emit(LIns("addi", (const_i(pipe, 2), const_i(pipe, 3)), type="i"))
        assert result.op == "const"
        assert result.imm == 5

    def test_compare_fold(self):
        pipe = make_pipeline()
        result = pipe.emit(LIns("lti", (const_i(pipe, 1), const_i(pipe, 2)), type="b"))
        assert result.op == "const"
        assert result.imm is True

    def test_double_fold(self):
        pipe = make_pipeline()
        result = pipe.emit(
            LIns("muld", (const_d(pipe, 2.0), const_d(pipe, 4.0)), type="d")
        )
        assert result.op == "const"
        assert result.imm == 8.0

    def test_overflowing_fold_declined(self):
        # Folding an add that would overflow must keep the guarded insn.
        pipe = make_pipeline()
        big = const_i(pipe, 2**31 - 1)
        one = const_i(pipe, 1)
        result = pipe.emit(LIns("addi", (big, one), type="i"))
        assert result.op == "addi"

    def test_bitwise_fold_wraps_int32(self):
        pipe = make_pipeline()
        result = pipe.emit(
            LIns("shli", (const_i(pipe, 1), const_i(pipe, 31)), type="i")
        )
        assert result.op == "const"
        assert result.imm == -(2**31)

    def test_unary_folds(self):
        pipe = make_pipeline()
        assert pipe.emit(LIns("i2d", (const_i(pipe, 3),), type="d")).imm == 3.0
        assert pipe.emit(
            LIns("notb", (pipe.emit(LIns("const", imm=True, type="b")),), type="b")
        ).imm is False


class TestAlgebraicIdentities:
    def test_add_zero(self):
        pipe = make_pipeline()
        x = pipe.emit(LIns("param", slot=0, type="i"))
        assert pipe.emit(LIns("addi", (x, const_i(pipe, 0)), type="i")) is x
        assert pipe.emit(LIns("addi", (const_i(pipe, 0), x), type="i")) is x

    def test_mul_one_and_zero(self):
        pipe = make_pipeline()
        x = pipe.emit(LIns("param", slot=0, type="i"))
        assert pipe.emit(LIns("muli", (x, const_i(pipe, 1)), type="i")) is x
        zero = pipe.emit(LIns("muli", (x, const_i(pipe, 0)), type="i"))
        assert zero.op == "const" and zero.imm == 0

    def test_sub_self_is_zero(self):
        # The paper's example: a - a = 0.
        pipe = make_pipeline()
        x = pipe.emit(LIns("param", slot=0, type="i"))
        result = pipe.emit(LIns("subi", (x, x), type="i"))
        assert result.op == "const" and result.imm == 0


class TestSemanticFilter:
    def test_int_double_roundtrip_removed(self):
        # "LIR that converts an INT to a DOUBLE and then back again
        # would be removed by this filter."
        pipe = make_pipeline()
        x = pipe.emit(LIns("param", slot=0, type="i"))
        widened = pipe.emit(LIns("i2d", (x,), type="d"))
        back = pipe.emit(LIns("d2i32", (widened,), type="i"))
        assert back is x

    def test_double_compare_of_promoted_ints_narrows(self):
        pipe = make_pipeline()
        a = pipe.emit(LIns("param", slot=0, type="i"))
        b = pipe.emit(LIns("param", slot=1, type="i"))
        wa = pipe.emit(LIns("i2d", (a,), type="d"))
        wb = pipe.emit(LIns("i2d", (b,), type="d"))
        cmp = pipe.emit(LIns("ltd", (wa, wb), type="b"))
        assert cmp.op == "lti"
        assert cmp.args == (a, b)

    def test_toboold_of_promoted_int_narrows(self):
        pipe = make_pipeline()
        a = pipe.emit(LIns("param", slot=0, type="i"))
        wa = pipe.emit(LIns("i2d", (a,), type="d"))
        result = pipe.emit(LIns("toboold", (wa,), type="b"))
        assert result.op == "tobooli"


class TestCSE:
    def test_pure_expression_shared(self):
        pipe = make_pipeline()
        a = pipe.emit(LIns("param", slot=0, type="i"))
        b = pipe.emit(LIns("param", slot=1, type="i"))
        first = pipe.emit(LIns("addi", (a, b), type="i"))
        second = pipe.emit(LIns("addi", (a, b), type="i"))
        assert first is second

    def test_constants_deduplicated(self):
        pipe = make_pipeline()
        assert const_i(pipe, 7) is const_i(pipe, 7)
        assert const_i(pipe, 7) is not const_d(pipe, 7.0)

    def test_load_cse_and_store_invalidation(self):
        pipe = make_pipeline()
        first = pipe.emit(LIns("ldar", slot=3, type="i"))
        second = pipe.emit(LIns("ldar", slot=3, type="i"))
        assert first is second
        pipe.emit(LIns("star", (first,), slot=3))
        third = pipe.emit(LIns("ldar", slot=3, type="i"))
        assert third is not first

    def test_heap_load_invalidated_by_call(self):
        from repro.jit.native import CallSpec

        pipe = make_pipeline()
        obj = pipe.emit(LIns("param", slot=0, type="o"))
        first = pipe.emit(LIns("ldshape", (obj,), type="i"))
        assert pipe.emit(LIns("ldshape", (obj,), type="i")) is first
        spec = CallSpec(kind="helper", name="x", fn=lambda vm: None)
        pipe.emit(LIns("call", (), imm=spec, type="v"))
        assert pipe.emit(LIns("ldshape", (obj,), type="i")) is not first

    def test_ar_load_survives_heap_store(self):
        pipe = make_pipeline()
        obj = pipe.emit(LIns("param", slot=0, type="o"))
        load = pipe.emit(LIns("ldar", slot=2, type="i"))
        boxed = pipe.emit(LIns("boxv", (load,), imm=None, type="x"))
        pipe.emit(LIns("stslot", (obj, boxed), imm=0))
        assert pipe.emit(LIns("ldar", slot=2, type="i")) is load

    def test_redundant_guard_swallowed(self):
        pipe = make_pipeline()
        cond = pipe.emit(LIns("param", slot=0, type="b"))
        exit_marker = object()
        pipe.emit(LIns("xf", (cond,), exit=exit_marker))
        before = len(pipe.lir)
        pipe.emit(LIns("xf", (cond,), exit=exit_marker))
        assert len(pipe.lir) == before  # second guard not appended

    def test_opposite_guard_not_swallowed(self):
        pipe = make_pipeline()
        cond = pipe.emit(LIns("param", slot=0, type="b"))
        pipe.emit(LIns("xf", (cond,), exit=object()))
        before = len(pipe.lir)
        pipe.emit(LIns("xt", (cond,), exit=object()))
        assert len(pipe.lir) == before + 1


class TestSoftFloat:
    def test_double_ops_become_calls(self):
        pipe = make_pipeline(enable_softfloat=True)
        a = pipe.emit(LIns("param", slot=0, type="d"))
        b = pipe.emit(LIns("param", slot=1, type="d"))
        result = pipe.emit(LIns("addd", (a, b), type="d"))
        assert result.op == "call"
        assert result.imm.name == "softfloat_addd"

    def test_softfloat_helpers_compute_correctly(self):
        import math

        from repro.jit.pipeline import _make_softfloat

        assert _make_softfloat("addd")(None, 1.5, 2.5) == 4.0
        assert _make_softfloat("divd")(None, 1.0, 0.0) == math.inf
        assert _make_softfloat("ned")(None, math.nan, 1.0) is True
        assert _make_softfloat("ltd")(None, math.nan, 1.0) is False
        assert _make_softfloat("d2i32")(None, 2.0**31) == -(2**31)

    def test_int_ops_untouched(self):
        pipe = make_pipeline(enable_softfloat=True)
        a = pipe.emit(LIns("param", slot=0, type="i"))
        result = pipe.emit(LIns("addi", (a, a), type="i"))
        assert result.op == "addi"


class TestAblationFlags:
    def test_cse_disabled(self):
        pipe = make_pipeline(enable_cse=False)
        a = pipe.emit(LIns("param", slot=0, type="i"))
        first = pipe.emit(LIns("addi", (a, a), type="i"))
        second = pipe.emit(LIns("addi", (a, a), type="i"))
        assert first is not second

    def test_exprsimp_disabled(self):
        pipe = make_pipeline(enable_exprsimp=False, enable_cse=False)
        result = pipe.emit(
            LIns("addi", (const_i(pipe, 2), const_i(pipe, 3)), type="i")
        )
        assert result.op == "addi"
