"""Coverage for the human-readable dumps: bytecode disassembly, LIR
formatting, native formatting, typemap description."""

from repro import TracingVM
from repro.bytecode.compiler import compile_program
from repro.bytecode.disasm import disassemble
from repro.core.lir import LIns, format_trace
from repro.jit.codegen import format_native
from repro.jit.native import NativeInsn


class TestDisassembler:
    def test_every_opcode_category_renders(self):
        code = compile_program(
            """
            var o = {x: 1};
            var a = [1, 2];
            function f(n) { return n; }
            for (var i = 0; i < 3; i++) {
                o.x += a[i % 2] + f(i);
                switch (i) { case 1: break; }
            }
            try { throw 1; } catch (e) { delete o.x; }
            for (var k in o) ;
            typeof o;
            """
        )
        text = disassemble(code)
        for expected in ("LOOPHEADER", "GETPROP", "GETELEM", "CALL",
                         "TRYPUSH", "THROW", "DELPROP", "ITERKEYS", "TYPEOF"):
            assert expected in text, expected

    def test_jump_targets_annotated(self):
        code = compile_program("for (var i = 0; i < 3; i++) ;")
        assert "backward (loop edge)" in disassemble(code)

    def test_loop_header_shows_range(self):
        code = compile_program("for (var i = 0; i < 3; i++) ;")
        assert "range=[" in disassemble(code)


class TestLIRFormatting:
    def test_format_trace_lines(self):
        a = LIns("param", slot=0, type="i")
        b = LIns("addi", (a, a), type="i")
        text = format_trace([a, b])
        assert f"v{a.ins_id}=param" in text
        assert f"v{b.ins_id}=addi" in text
        assert ": i" in text

    def test_long_imm_truncated(self):
        ins = LIns("const", imm="x" * 100, type="s")
        assert "..." in repr(ins)

    def test_exit_reference_rendered(self):
        class FakeExit:
            exit_id = 99

        ins = LIns("xf", (LIns("const", imm=True, type="b"),), exit=FakeExit())
        assert "exit99" in repr(ins)


class TestNativeFormatting:
    def test_register_names(self):
        insns = [
            NativeInsn("ldar", dst=0, imm=3),
            NativeInsn("i2d", dst=8, a=0),
            NativeInsn("star", a=8, imm=-2),
        ]
        text = format_native(insns)
        assert "r0" in text
        assert "f0" in text
        assert "#-2" in text

    def test_call_srcs_rendered(self):
        insn = NativeInsn("call", dst=1, srcs=[2, 3], aux=None)
        assert "(r2, r3)" in repr(insn)


class TestEndToEndDumps:
    def test_trace_dump_of_real_program(self):
        vm = TracingVM()
        vm.run(
            "var o = {x: 2}; var s = 0;"
            "for (var i = 0; i < 60; i++) s += o.x * i;"
            "s;"
        )
        trees = vm.monitor.cache.all_trees()
        assert trees
        for tree in trees:
            lir_text = format_trace(tree.fragment.lir)
            native_text = format_native(tree.fragment.native)
            assert "ldshape" in lir_text
            assert "gcmp" in native_text or "xf" in native_text
