"""Behavioral tests for the tracing machinery itself: trees, branch
traces, nesting, the oracle, blacklisting, stitching, preemption, deep
side exits, and FFI interactions (paper Sections 3, 4, 6)."""

from repro import TracingVM, VMConfig
from repro.bytecode import opcodes as op
from tests.helpers import assert_engines_agree, run_baseline, run_tracing


class TestTraceTrees:
    def test_single_stable_loop_forms_one_tree(self):
        _r, vm = run_tracing("var s = 0; for (var i = 0; i < 100; i++) s += i; s;")
        assert vm.stats.tracing.trees_formed == 1
        assert vm.stats.tracing.branch_traces == 0

    def test_branchy_loop_grows_branch_traces(self):
        _r, vm = run_tracing(
            "var a = 0, b = 0;"
            "for (var i = 0; i < 200; i++) { if (i % 2) a++; else b++; }"
            "a * 1000 + b;"
        )
        assert vm.stats.tracing.branch_traces >= 1
        assert vm.stats.tracing.stitched_transfers > 0

    def test_stitched_branch_avoids_monitor(self):
        _r, vm = run_tracing(
            "var a = 0;"
            "for (var i = 0; i < 400; i++) { if (i % 2) a += 1; else a += 2; }"
            "a;"
        )
        tracing = vm.stats.tracing
        # Once both paths are compiled, iterations alternate via
        # stitching without taking monitor-visible side exits.
        assert tracing.stitched_transfers > tracing.side_exits_taken

    def test_hotness_threshold_respected(self):
        config = VMConfig(hotness_threshold=50)
        _r, vm = run_tracing(
            "var s = 0; for (var i = 0; i < 20; i++) s += i; s;", config
        )
        assert vm.stats.tracing.recordings_started == 0

    def test_stitching_disabled_still_correct(self):
        source = (
            "var a = 0; for (var i = 0; i < 200; i++) { if (i % 2) a += 1; else a += 2; } a;"
        )
        _r1, base = run_baseline(source)
        _r2, vm = run_tracing(source, VMConfig(enable_stitching=False))
        assert vm.stats.tracing.branch_traces == 0
        assert base.run if True else None  # result equality checked below
        assert repr(TracingVM(VMConfig(enable_stitching=False)).run(source)) == repr(
            base.run(source)
        )


class TestNestedTrees:
    NESTED = (
        "var t = 0;"
        "for (var i = 0; i < 30; i++) { for (var j = 0; j < 30; j++) { t += i * j; } }"
        "t;"
    )

    def test_nesting_records_calltree(self):
        _r, vm = run_tracing(self.NESTED)
        tracing = vm.stats.tracing
        assert tracing.tree_calls_recorded >= 1
        assert tracing.tree_calls_executed > 20  # the outer loop calls it

    def test_trees_formed_stays_flat(self):
        # The point of Section 4: no O(n^k) duplication.
        _r, vm = run_tracing(self.NESTED)
        assert vm.stats.tracing.trees_formed <= 3

    def test_nesting_disabled_cannot_compile_outer(self):
        _r, vm = run_tracing(self.NESTED, VMConfig(enable_nesting=False))
        assert vm.stats.tracing.tree_calls_recorded == 0
        assert "nested-loop-nesting-disabled" in vm.stats.tracing.abort_reasons

    def test_triple_nesting(self):
        source = (
            "var t = 0;"
            "for (var i = 0; i < 8; i++)"
            "  for (var j = 0; j < 8; j++)"
            "    for (var k = 0; k < 8; k++) t += 1;"
            "t;"
        )
        vms = assert_engines_agree(source, ("baseline", "tracing"))
        assert vms["tracing"].stats.tracing.tree_calls_recorded >= 2

    def test_inner_loop_in_called_function(self):
        source = (
            "function work(n) { var s = 0; for (var k = 0; k < 10; k++) s += n; return s; }"
            "var t = 0; for (var i = 0; i < 50; i++) t += work(i); t;"
        )
        vms = assert_engines_agree(source, ("baseline", "tracing"))
        assert vms["tracing"].stats.profile.fraction_native() > 0.5

    def test_branchy_inner_loop(self):
        source = (
            "var t = 0;"
            "for (var i = 0; i < 20; i++)"
            "  for (var j = 0; j < 20; j++)"
            "    if ((i + j) % 2) t += 1; else t += 2;"
            "t;"
        )
        assert_engines_agree(source, ("baseline", "tracing"))


class TestOracle:
    # x is an int at every loop header (+0.5 twice per iteration) but
    # turns double *inside* the iteration: the trace speculates int at
    # entry and closes with a double — the paper's mis-speculation case.
    UNSTABLE = (
        "var x = 0;"
        "for (var i = 0; i < 300; i++) { x += 0.5; x += 0.5; }"
        "x;"
    )

    def test_mis_speculation_teaches_the_oracle(self):
        _r, vm = run_tracing(self.UNSTABLE)
        tracing = vm.stats.tracing
        assert tracing.oracle_marks >= 1
        assert tracing.unstable_traces >= 1
        oracle = vm.monitor.oracle
        assert oracle.should_demote(oracle.global_key("x"))

    def test_unstable_exit_links_to_peer_tree(self):
        # An oscillating variable (alternating int/double across
        # iterations) makes two peer trees whose unstable exits chain
        # directly into each other (Figure 6's linked groups).
        source = (
            "var x = 0; var t = 0;"
            "for (var i = 0; i < 200; i++) {"
            "  if (i % 2 == 0) x = 1; else x = 0.5;"
            "  t += x;"
            "}"
            "t;"
        )
        vms = assert_engines_agree(source, ("baseline", "tracing"))
        tracing = vms["tracing"].stats.tracing
        assert tracing.trees_formed >= 1

    def test_type_flip_across_iterations_uses_peer_trees(self):
        # By contrast, a flip that happens *between* entries is handled
        # by a second peer tree, not the oracle (Figure 6).
        source = (
            "var x = 0;"
            "for (var i = 0; i < 300; i++) { if (i < 10) x += 1; else x += 0.5; }"
            "x;"
        )
        vms = assert_engines_agree(source, ("baseline", "tracing"))
        assert vms["tracing"].stats.tracing.trees_formed == 2

    def test_unstable_loop_converges(self):
        _r, vm = run_tracing(self.UNSTABLE)
        # After convergence the loop runs native.
        assert vm.stats.profile.fraction_native() > 0.7

    def test_oracle_result_matches_baseline(self):
        assert_engines_agree(self.UNSTABLE, ("baseline", "tracing"))

    def test_oracle_disabled_still_correct(self):
        source = self.UNSTABLE
        _r1, base = run_baseline(source)
        result = TracingVM(VMConfig(enable_oracle=False)).run(source)
        assert repr(result) == repr(base.run(source))

    def test_promotable_entry_avoids_peer_explosion(self):
        # x alternates int/double boxing across iterations; the double
        # tree accepts int entries by promotion, so one tree suffices.
        source = "var x = 0; for (var i = 0; i < 300; i++) x += 0.5; x;"
        _r, vm = run_tracing(source)
        assert vm.stats.tracing.trees_formed <= 2
        assert vm.stats.profile.fraction_native() > 0.9


class TestBlacklisting:
    ABORTING = "var t = 0; for (var i = 0; i < 100; i++) t += hostEval('2'); t;"

    def test_hot_aborting_loop_gets_blacklisted(self):
        _r, vm = run_tracing(self.ABORTING)
        assert vm.stats.tracing.blacklisted >= 1

    def test_blacklist_patches_loopheader_to_nop(self):
        vm = TracingVM()
        code = vm.compile(self.ABORTING)
        vm.run_code(code)
        assert code.blacklisted_headers
        for pc in code.blacklisted_headers:
            assert code.insns[pc][0] == op.NOP

    def test_backoff_limits_recording_attempts(self):
        _r, vm = run_tracing(self.ABORTING)
        # failures are capped at max_recording_failures, not one per
        # iteration.
        assert vm.stats.tracing.traces_aborted <= vm.config.max_recording_failures

    def test_blacklisting_disabled_keeps_trying(self):
        _r, vm = run_tracing(self.ABORTING, VMConfig(enable_blacklisting=False))
        assert vm.stats.tracing.traces_aborted > vm.config.max_recording_failures
        assert vm.stats.tracing.blacklisted == 0

    def test_nesting_forgiveness_when_inner_not_ready(self):
        # The inner loop is empty for the first outer iterations, so the
        # outer gets hot before any inner tree exists; the outer abort is
        # forgiven once the inner tree compiles.
        source = (
            "var t = 0;"
            "for (var i = 0; i < 40; i++) {"
            "  var limit = (i < 2) ? 0 : 8;"
            "  for (var j = 0; j < limit; j++) { t += j; }"
            "}"
            "t;"
        )
        _r, vm = run_tracing(source)
        tracing = vm.stats.tracing
        assert "inner-tree-not-ready" in tracing.abort_reasons
        assert tracing.blacklisted == 0

    def test_nesting_forgiveness_when_inner_side_exits(self):
        # Inner tree exists but side-exits during outer recording: the
        # outer aborts (forgivably) and the outer tree still forms.
        source = (
            "var t = 0;"
            "for (var i = 0; i < 40; i++) { for (var j = 0; j < 8; j++) { t += j; } }"
            "t;"
        )
        _r, vm = run_tracing(source)
        tracing = vm.stats.tracing
        assert tracing.tree_calls_recorded >= 1  # the outer compiled anyway
        assert tracing.blacklisted == 0
        # Forgiveness kept back-off from stalling the outer tree.
        assert tracing.backoffs <= 3


class TestDeepSideExits:
    def test_exit_inside_inlined_call_synthesizes_frame(self):
        # pick() is inlined; the branch inside it diverges on i == 60,
        # forcing a side exit at inline depth 1.
        source = (
            "function pick(n) { if (n < 60) return 1; return 1000; }"
            "var t = 0; for (var i = 0; i < 70; i++) t += pick(i); t;"
        )
        vms = assert_engines_agree(source, ("baseline", "tracing"))
        assert vms["tracing"].stats.tracing.trees_formed >= 1

    def test_exit_two_frames_deep(self):
        source = (
            "function leaf(n) { if (n == 55) return 1000; return 1; }"
            "function mid(n) { return leaf(n) + 1; }"
            "var t = 0; for (var i = 0; i < 70; i++) t += mid(i); t;"
        )
        assert_engines_agree(source, ("baseline", "tracing"))

    def test_inline_depth_limit_aborts(self):
        config = VMConfig(max_inline_depth=2)
        source = (
            "function a(n) { return b(n) + 1; }"
            "function b(n) { return c(n) + 1; }"
            "function c(n) { return d(n) + 1; }"
            "function d(n) { return n; }"
            "var t = 0; for (var i = 0; i < 50; i++) t += a(i); t;"
        )
        _r, vm = run_tracing(source, config)
        assert "inline-depth-exceeded" in vm.stats.tracing.abort_reasons


class TestPreemption:
    def test_preempt_flag_exits_trace(self):
        vm = TracingVM()
        # Let the loop compile first.
        vm.run("var warm = 0; for (var w = 0; w < 50; w++) warm += w;")
        vm.request_preemption()
        vm.run("var s = 0; for (var i = 0; i < 50; i++) s += i;")
        assert vm.preemptions_serviced >= 1
        assert not vm.preempt_flag

    def test_preemption_serviced_mid_native_loop(self):
        _r, vm = run_tracing("var s = 0; for (var i = 0; i < 100; i++) s += i; s;")
        vm.request_preemption()
        result = vm.run("var t = 0; for (var j = 0; j < 100; j++) t += 2; t;")
        assert result.payload == 200
        assert vm.preemptions_serviced == 1


class TestFFIOnTrace:
    def test_typed_natives_stay_on_trace(self):
        _r, vm = run_tracing(
            "var t = 0; for (var i = 0; i < 100; i++) t += Math.sqrt(i); Math.floor(t);"
        )
        # sin/sqrt have typed signatures: no type-guard exits per call.
        assert vm.stats.profile.fraction_native() > 0.9

    def test_reentering_native_forces_exit(self):
        source = (
            "function cb() { return 3; }"
            "var t = 0; for (var i = 0; i < 60; i++) t += reenter(cb); t;"
        )
        vms = assert_engines_agree(source, ("baseline", "tracing"))
        stats = vms["tracing"].stats.tracing
        assert stats.side_exits_taken > 20  # the reentry guard fires per pass

    def test_state_access_native_ends_trace(self):
        source = (
            "var g = 7; var t = 0;"
            "for (var i = 0; i < 60; i++) t += readGlobal('g'); t;"
        )
        assert_engines_agree(source, ("baseline", "tracing"))

    def test_state_writes_visible_to_trace(self):
        source = (
            "var g = 0; var t = 0;"
            "for (var i = 0; i < 60; i++) { writeGlobal('g', i); t += readGlobal('g'); }"
            "t;"
        )
        assert_engines_agree(source, ("baseline", "tracing"))

    def test_helper_exception_deep_bails(self):
        # Array method on a non-array mid-loop throws inside a native.
        source = (
            "var a = [1, 2, 3]; var bad = {};"
            "var t = 0; var r = '';"
            "for (var i = 0; i < 50; i++) {"
            "  var target = (i == 45) ? bad : a;"
            "  try { t += target.slice(0).length; } catch (e) { r = 'caught'; }"
            "}"
            "r + t;"
        )
        assert_engines_agree(source, ("baseline", "tracing"))


class TestTraceContents:
    def test_loop_trace_ends_with_loop_instruction(self):
        _r, vm = run_tracing("var s = 0; for (var i = 0; i < 60; i++) s += i; s;")
        trees = vm.monitor.cache.all_trees()
        stable = [t for t in trees if t.fragment.lir and t.fragment.lir[-1].op == "loop"]
        assert stable

    def test_preempt_guard_at_loop_edge(self):
        _r, vm = run_tracing("var s = 0; for (var i = 0; i < 60; i++) s += i; s;")
        tree = vm.monitor.cache.all_trees()[0]
        ops = [ins.op for ins in tree.fragment.lir]
        assert "ldpreempt" in ops

    def test_array_store_uses_helper_call_like_figure3(self):
        _r, vm = run_tracing(
            "var a = new Array(100); for (var i = 0; i < 100; i++) a[i] = i; a[5];"
        )
        tree = vm.monitor.cache.all_trees()[0]
        call_names = [
            ins.imm.name for ins in tree.fragment.lir if ins.op == "call"
        ]
        assert "js_Array_set" in call_names

    def test_shape_guard_for_property_access(self):
        _r, vm = run_tracing(
            "var o = {x: 1}; var t = 0; for (var i = 0; i < 60; i++) t += o.x; t;"
        )
        tree = vm.monitor.cache.all_trees()[0]
        ops = [ins.op for ins in tree.fragment.lir]
        assert "ldshape" in ops
        assert "ldslot" in ops

    def test_dead_stack_stores_eliminated(self):
        _r, vm = run_tracing("var s = 0; for (var i = 0; i < 60; i++) s += i * 2 + 1; s;")
        tree = vm.monitor.cache.all_trees()[0]
        stats = tree.fragment.backward_stats
        assert stats.dead_stack_stores > 0
