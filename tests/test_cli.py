"""Tests for the command-line interface."""

import io

import pytest

from repro.cli import main


def run_cli(argv):
    out = io.StringIO()
    status = main(argv, out=out)
    return status, out.getvalue()


class TestBasicRuns:
    def test_inline_eval(self):
        status, output = run_cli(["-e", "1 + 2;"])
        assert status == 0
        assert output.strip() == "3"

    def test_file(self, tmp_path):
        script = tmp_path / "prog.js"
        script.write_text("var s = 0; for (var i = 0; i < 10; i++) s += i; s;")
        status, output = run_cli([str(script)])
        assert status == 0
        assert output.strip() == "45"

    def test_missing_file(self):
        with pytest.raises(SystemExit):
            main(["/nonexistent/prog.js"], out=io.StringIO())

    def test_no_input(self):
        with pytest.raises(SystemExit):
            main([], out=io.StringIO())

    def test_print_output_ordering(self):
        status, output = run_cli(["-e", "print('hello'); 42;"])
        assert output.splitlines() == ["hello", "42"]

    def test_no_result_flag(self):
        status, output = run_cli(["--no-result", "-e", "print('x'); 42;"])
        assert output.strip() == "x"

    def test_every_engine(self):
        for engine in ("baseline", "threaded", "methodjit", "tracing"):
            status, output = run_cli(["--engine", engine, "-e", "6 * 7;"])
            assert status == 0
            assert output.strip() == "42"


class TestErrorHandling:
    def test_syntax_error(self, capsys):
        status, _output = run_cli(["-e", "var = ;"])
        assert status == 1

    def test_uncaught_exception(self, capsys):
        status, _output = run_cli(["-e", "throw 'kaboom';"])
        assert status == 1
        assert "kaboom" in capsys.readouterr().err


class TestDiagnostics:
    def test_stats(self):
        status, output = run_cli(
            ["--stats", "-e", "var s = 0; for (var i = 0; i < 50; i++) s += i; s;"]
        )
        assert "total simulated cycles" in output
        assert "trees formed" in output

    def test_disasm(self):
        status, output = run_cli(["--disasm", "-e", "var x = 1 + 2;"])
        assert status == 0
        assert "LOOPHEADER" not in output  # no loop here
        assert "SETGLOBAL" in output

    def test_trace_dump(self):
        status, output = run_cli(
            ["--trace-dump", "-e", "var s = 0; for (var i = 0; i < 50; i++) s += i; s;"]
        )
        assert status == 0
        assert "=== tree" in output
        assert "LIR (as recorded," in output
        assert "LIR (optimized," in output
        assert "native:" in output

    def test_trace_dump_shows_hoisted_prologue(self):
        # The array load and its shape guard are loop-invariant, so the
        # optimized view splits into a once-per-entry prologue + body.
        status, output = run_cli(
            [
                "--trace-dump",
                "-e",
                "var a = [7]; var s = 0; "
                "for (var i = 0; i < 50; i++) s += a[0]; s;",
            ]
        )
        assert status == 0
        assert "-- prologue (once per trace entry) --" in output
        assert "-- loop body (every iteration) --" in output
        prologue = output.split("-- prologue (once per trace entry) --")[1]
        prologue = prologue.split("-- loop body (every iteration) --")[0]
        assert "gclass" in prologue  # invariant shape guard left the loop

    def test_trace_dump_no_traces(self):
        status, output = run_cli(["--trace-dump", "-e", "1 + 1;"])
        assert "(no traces were compiled)" in output

    def test_compare(self):
        status, output = run_cli(
            ["--compare", "-e", "var s = 0; for (var i = 0; i < 300; i++) s += i; s;"]
        )
        assert status == 0
        for engine in ("baseline", "threaded", "methodjit", "tracing"):
            assert engine in output
        assert "speedup" in output


class TestFleetBatch:
    """The batch subcommand's fleet mode (--workers and friends)."""

    JOBS = [
        "var s = 0; for (var i = 0; i < 150; i = i + 1) s = s + i; s;",
        'print("hello"); 2 + 2;',
        "var a = []; for (var i = 0; i < 30; i = i + 1) a.push(i); a.length;",
    ]

    def _write_jobs(self, tmp_path):
        paths = []
        for index, source in enumerate(self.JOBS):
            path = tmp_path / f"job{index}.js"
            path.write_text(source)
            paths.append(str(path))
        return paths

    def test_workers_flag_runs_fleet(self, tmp_path, capsys):
        paths = self._write_jobs(tmp_path)
        status, output = run_cli(["batch", "--workers", "2"] + paths)
        assert status == 0
        assert "fleet (2 workers):" in output
        assert "3 jobs: 3 ok" in output

    def test_dump_results_converges_across_worker_counts(self, tmp_path,
                                                         capsys):
        import json

        paths = self._write_jobs(tmp_path)
        one = tmp_path / "r1.json"
        many = tmp_path / "r3.json"
        assert run_cli(["batch", "--workers", "1",
                        "--dump-results", str(one)] + paths)[0] == 0
        assert run_cli(["batch", "--workers", "3", "--hang-timeout", "0.05",
                        "--inject-fleet-fault", "fleet.worker_crash",
                        "--dump-results", str(many)] + paths)[0] == 0
        assert json.loads(one.read_text()) == json.loads(many.read_text())

    def test_rate_flag_sheds(self, tmp_path, capsys):
        path = tmp_path / "j.js"
        path.write_text("1 + 1;")
        # All three jobs share the tenant (the file stem): rate 1/sec
        # admits the burst of one and sheds the rest.
        status, output = run_cli(
            ["batch", "--workers", "1", "--rate", "j=1",
             str(path), str(path), str(path)]
        )
        assert status == 0
        assert "shed" in output
        assert "`- shed: rate" in output

    def test_fleet_flags_require_workers(self, tmp_path):
        path = tmp_path / "j.js"
        path.write_text("1;")
        with pytest.raises(SystemExit, match="--workers"):
            run_cli(["batch", "--rate", "a=1", str(path)])

    def test_bad_rate_spec(self, tmp_path):
        path = tmp_path / "j.js"
        path.write_text("1;")
        with pytest.raises(SystemExit, match="TENANT=R"):
            run_cli(["batch", "--workers", "1", "--rate", "oops", str(path)])

    def test_fault_sites_lists_fleet_sites(self):
        status, output = run_cli(["--fault-sites"])
        assert status == 0
        for site in ("fleet.worker_crash", "fleet.worker_hang",
                     "fleet.steal_race"):
            assert site in output

    def test_fleet_events_and_telemetry_artifacts(self, tmp_path, capsys):
        from repro.obs.validate import detect_and_validate

        paths = self._write_jobs(tmp_path)
        events = tmp_path / "fleet.jsonl"
        metrics = tmp_path / "fleet-metrics.json"
        trace = tmp_path / "fleet-trace.json"
        status, _output = run_cli(
            ["batch", "--workers", "2",
             "--dump-events", str(events),
             "--metrics-json", str(metrics),
             "--trace-export", str(trace)] + paths
        )
        assert status == 0
        assert "events JSONL" in detect_and_validate(str(events))
        assert "metrics" in detect_and_validate(str(metrics))
        assert "Chrome trace" in detect_and_validate(str(trace))
